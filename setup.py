"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(legacy setuptools develop-mode path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Performance Engineering of the Kernel Polynomial "
        "Method on Large-Scale CPU-GPU Systems' (IPDPS 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
