"""Roofline models and device/node performance predictions."""

import pytest

from repro.perf.arch import ARCHITECTURES, IVB, K20M, K20X, PIZ_DAINT_NODE, SNB
from repro.perf.balance import bmin
from repro.perf.roofline import (
    cpu_kernel_performance,
    custom_roofline,
    gpu_kernel_performance,
    gpu_level_bandwidths,
    llc_code_balance,
    memory_bound_performance,
    node_performance,
    roofline,
)


class TestTable2:
    def test_registry_complete(self):
        # Table II devices plus the outlook Xeon Phi (paper Section VII)
        assert set(ARCHITECTURES) == {"IVB", "SNB", "K20m", "K20X", "KNC"}

    def test_ivb_row(self):
        assert (IVB.clock_mhz, IVB.cores, IVB.bandwidth_gbs) == (2200, 10, 50.0)
        assert (IVB.llc_mib, IVB.peak_gflops) == (25.0, 176.0)

    def test_snb_row(self):
        assert (SNB.clock_mhz, SNB.cores, SNB.bandwidth_gbs) == (2600, 8, 48.0)
        assert SNB.peak_gflops == 166.4

    def test_k20_rows(self):
        assert (K20M.bandwidth_gbs, K20M.peak_gflops) == (150.0, 1174.0)
        assert (K20X.bandwidth_gbs, K20X.peak_gflops) == (170.0, 1311.0)

    def test_peak_consistent_with_clock(self):
        """P_peak = clock x cores x 8 flops/cycle (AVX DP) on the CPUs."""
        assert IVB.peak_gflops == pytest.approx(2.2 * 10 * 8)
        assert SNB.peak_gflops == pytest.approx(2.6 * 8 * 8)

    def test_gpu_peak_consistent_with_smx(self):
        """P_peak = clock x SMX x 64 FMA units x 2 flops."""
        assert K20M.peak_gflops == pytest.approx(0.706 * 13 * 128, rel=1e-3)
        assert K20X.peak_gflops == pytest.approx(0.732 * 14 * 128, rel=1e-3)


class TestRooflineEq9:
    def test_min_of_peak_and_memory(self):
        assert roofline(100.0, 50.0, 1.0) == 50.0
        assert roofline(100.0, 500.0, 1.0) == 100.0

    def test_memory_bound_eq10(self):
        assert memory_bound_performance(50.0, 2.0) == 25.0

    def test_invalid_balance(self):
        with pytest.raises(ValueError):
            roofline(1, 1, 0)
        with pytest.raises(ValueError):
            memory_bound_performance(1, -1)

    def test_ivb_spmv_prediction(self):
        """b / B_min(1) = 50 / 2.23 ~= 22.4 Gflop/s (paper Fig. 7 line)."""
        assert memory_bound_performance(
            IVB.bandwidth_gbs, bmin(1)
        ) == pytest.approx(22.4, abs=0.2)


class TestCustomRooflineEq11:
    def test_bottleneck_crossover(self):
        """Memory-bound at small R, LLC-bound at large R (paper Fig. 8)."""
        small = custom_roofline(IVB, 1)
        large = custom_roofline(IVB, 32)
        assert small["p_star"] == small["p_mem"]
        assert large["p_star"] == large["p_llc"]

    def test_p_star_is_min(self):
        for r in (1, 4, 16, 64):
            d = custom_roofline(IVB, r)
            assert d["p_star"] == min(d["p_mem"], d["p_llc"])

    def test_saturates_near_measured_65(self):
        """Paper Fig. 8: measured ~65 Gflop/s at large R; model within 15%."""
        p = custom_roofline(IVB, 32)["p_star"]
        assert 55.0 <= p <= 75.0

    def test_llc_balance_decreasing_in_r(self):
        assert llc_code_balance(1) > llc_code_balance(8) > llc_code_balance(64)

    def test_omega_raises_balance(self):
        assert (
            custom_roofline(IVB, 16, omega=1.5)["p_mem"]
            < custom_roofline(IVB, 16, omega=1.0)["p_mem"]
        )

    def test_never_exceeds_peak(self):
        for r in (1, 1024):
            assert custom_roofline(IVB, r)["p_star"] <= IVB.peak_gflops


class TestCpuModel:
    def test_stage_ordering(self):
        p0 = cpu_kernel_performance(IVB, "naive")
        p1 = cpu_kernel_performance(IVB, "aug_spmv")
        p2 = cpu_kernel_performance(IVB, "aug_spmmv", r=32)
        assert p0 < p1 < p2

    def test_spmv_saturates_with_cores(self):
        """Paper Fig. 7: aug_spmv is bandwidth-bound within the socket."""
        p4 = cpu_kernel_performance(IVB, "aug_spmv", cores=4)
        p10 = cpu_kernel_performance(IVB, "aug_spmv", cores=10)
        assert p10 == pytest.approx(p4, rel=0.02)

    def test_spmmv_scales_with_cores(self):
        """Paper Fig. 7: aug_spmmv(R=32) scales almost linearly."""
        p2 = cpu_kernel_performance(IVB, "aug_spmmv", r=32, cores=2)
        p10 = cpu_kernel_performance(IVB, "aug_spmmv", r=32, cores=10)
        assert p10 > 4.0 * p2

    def test_core_validation(self):
        with pytest.raises(ValueError):
            cpu_kernel_performance(IVB, "aug_spmv", cores=0)
        with pytest.raises(ValueError):
            cpu_kernel_performance(IVB, "aug_spmv", cores=11)

    def test_rejects_gpu(self):
        with pytest.raises(ValueError):
            cpu_kernel_performance(K20M, "naive")

    def test_unknown_stage(self):
        with pytest.raises(ValueError):
            cpu_kernel_performance(IVB, "fused_everything")


class TestGpuModel:
    def test_stage_ordering(self):
        p0 = gpu_kernel_performance(K20X, "naive")
        p1 = gpu_kernel_performance(K20X, "aug_spmv")
        p2 = gpu_kernel_performance(K20X, "aug_spmmv", r=32)
        assert p0 < p1 < p2

    def test_blocked_speedup_about_2_3x(self):
        """Paper Section VI-B: 2.3x naive GPU -> optimized GPU."""
        ratio = gpu_kernel_performance(K20X, "aug_spmmv", r=32) / \
            gpu_kernel_performance(K20X, "naive")
        assert 1.9 <= ratio <= 2.7

    def test_rejects_cpu(self):
        with pytest.raises(ValueError):
            gpu_kernel_performance(IVB, "naive")

    def test_bandwidth_curves_fig10(self):
        """R=1 memory-bound at b; large R saturates the L2; the full
        augmented kernel runs at a much lower level (latency-bound)."""
        bw1 = gpu_level_bandwidths(K20M, "spmmv", 1)
        assert bw1["dram"] == pytest.approx(K20M.bandwidth_gbs, rel=0.02)
        bw32 = gpu_level_bandwidths(K20M, "spmmv", 32)
        assert bw32["l2"] == pytest.approx(K20M.llc_bandwidth_gbs, rel=0.02)
        assert bw32["dram"] < bw1["dram"]
        full = gpu_level_bandwidths(K20M, "aug_spmmv", 32)
        assert full["l2"] < 0.5 * bw32["l2"]


class TestNodeModel:
    def test_fig11_headline_ratios(self):
        s0 = node_performance(PIZ_DAINT_NODE, "naive", r=32)
        s2 = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        # "more than a factor of 10" naive CPU -> optimized heterogeneous
        assert s2["heterogeneous"] / s0["cpu"] > 10.0
        # "another 36% ... by enabling fully heterogeneous execution"
        gain = s2["heterogeneous"] / s2["gpu"]
        assert 1.2 <= gain <= 1.5

    def test_parallel_efficiency_band(self):
        """Paper: heterogeneous efficiency tops out at 85-90%."""
        for stage in ("naive", "aug_spmv", "aug_spmmv"):
            eff = node_performance(PIZ_DAINT_NODE, stage, r=32)[
                "parallel_efficiency"
            ]
            assert 0.80 <= eff <= 0.92

    def test_stagewise_monotone(self):
        vals = [
            node_performance(PIZ_DAINT_NODE, s, r=32)["heterogeneous"]
            for s in ("naive", "aug_spmv", "aug_spmmv")
        ]
        assert vals[0] < vals[1] < vals[2]
