"""Paper Table I and Eqs. (4)-(7), cross-checked against instrumented kernels."""

import numpy as np
import pytest

from repro.core.moments import compute_eta
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.perf.balance import (
    bmin,
    bmin_limit,
    kpm_flops,
    kpm_min_traffic,
    naive_balance,
    table1_calls,
    table1_flops,
    table1_min_bytes,
)
from repro.util.counters import PerfCounters


class TestPaperNumbers:
    def test_bmin_r1_eq6(self):
        """Paper Eq. (6): B_min(1) ~= 2.23 bytes/flop."""
        assert bmin(1) == pytest.approx(2.23, abs=0.01)

    def test_bmin_limit_eq7(self):
        """Paper Eq. (7): B_min -> ~0.35 bytes/flop for R -> inf."""
        assert bmin_limit() == pytest.approx(0.35, abs=0.01)

    def test_bmin_closed_form(self):
        """(260/R + 48)/138 with the paper's parameters (Eq. (5))."""
        for r in (1, 2, 8, 32, 1024):
            assert bmin(r) == pytest.approx((260.0 / r + 48.0) / 138.0)

    def test_bmin_monotone_decreasing(self):
        vals = [bmin(r) for r in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_bmin_approaches_limit(self):
        assert bmin(10_000) == pytest.approx(bmin_limit(), rel=1e-2)

    def test_naive_balance_larger(self):
        assert naive_balance() > bmin(1)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            bmin(0)


class TestTable1:
    N, NNZ = 1000, 13_000

    @pytest.mark.parametrize(
        "func,expected_bytes",
        [
            ("spmv", 13_000 * 20 + 2 * 1000 * 16),
            ("axpy", 3 * 1000 * 16),
            ("scal", 2 * 1000 * 16),
            ("nrm2", 1000 * 16),
            ("dot", 2 * 1000 * 16),
        ],
    )
    def test_min_bytes(self, func, expected_bytes):
        assert table1_min_bytes(func, self.N, self.NNZ) == expected_bytes

    @pytest.mark.parametrize(
        "func,expected_flops",
        [
            ("spmv", 13_000 * 8),
            ("axpy", 1000 * 8),
            ("scal", 1000 * 6),
            ("nrm2", 1000 * 4),
            ("dot", 1000 * 8),
        ],
    )
    def test_flops(self, func, expected_flops):
        assert table1_flops(func, self.N, self.NNZ) == expected_flops

    def test_calls_per_solver(self):
        r, m = 4, 100
        assert table1_calls("spmv", r, m) == r * m / 2
        assert table1_calls("axpy", r, m) == r * m
        assert table1_calls("dot", r, m) == r * m / 2

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            table1_min_bytes("gemm", 1, 1)
        with pytest.raises(ValueError):
            table1_flops("gemm", 1, 1)
        with pytest.raises(ValueError):
            table1_calls("gemm", 1, 1)

    def test_kpm_total_equals_sum_of_calls(self):
        """Table I's KPM row = sum over functions of calls x per-call."""
        n, nnz, r, m = self.N, self.NNZ, 3, 40
        total_bytes = sum(
            table1_calls(f, r, m) * table1_min_bytes(f, n, nnz)
            for f in ("spmv", "axpy", "scal", "nrm2", "dot")
        )
        assert total_bytes == kpm_min_traffic(n, nnz, r, m, stage="naive")
        total_flops = sum(
            table1_calls(f, r, m) * table1_flops(f, n, nnz)
            for f in ("spmv", "axpy", "scal", "nrm2", "dot")
        )
        assert total_flops == kpm_flops(n, nnz, r, m)


class TestEq4Cascade:
    def test_traffic_ordering(self):
        n, nnz, r, m = 1000, 13_000, 16, 64
        v_naive = kpm_min_traffic(n, nnz, r, m, "naive")
        v_s1 = kpm_min_traffic(n, nnz, r, m, "aug_spmv")
        v_s2 = kpm_min_traffic(n, nnz, r, m, "aug_spmmv")
        assert v_naive > v_s1 > v_s2

    def test_stage_validated(self):
        with pytest.raises(ValueError):
            kpm_min_traffic(1, 1, 1, 2, "warp")


class TestAgainstInstrumentedKernels:
    """The analytic formulas must equal what the real kernels charge."""

    @pytest.mark.parametrize("engine,stage", [
        ("naive", "naive"), ("aug_spmv", "aug_spmv"), ("aug_spmmv", "aug_spmmv"),
    ])
    def test_solver_traffic_matches_eq4(self, ti_periodic, engine, stage):
        h, _ = ti_periodic
        n, nnz = h.n_rows, h.nnz
        r, m = 2, 8
        scale = SpectralScale.from_bounds(-8, 8)
        blk = make_block_vector(n, r, seed=0)
        c = PerfCounters()
        compute_eta(h, scale, m, blk, engine, counters=c)
        # the engines charge (m/2 - 1) inner iterations plus an spm(m)v init
        iters = m // 2 - 1
        if stage == "naive":
            per_iter = kpm_min_traffic(n, nnz, r, 2, "naive")
        elif stage == "aug_spmv":
            per_iter = kpm_min_traffic(n, nnz, r, 2, "aug_spmv")
        else:
            per_iter = kpm_min_traffic(n, nnz, r, 2, "aug_spmmv")
        if stage == "aug_spmmv":
            init = nnz * 20 + 2 * r * n * 16  # one blocked nu_1 spmmv
        else:
            init = r * (nnz * 20 + 2 * n * 16)  # one nu_1 spmv per column
        expected = iters / 1.0 * per_iter + init
        assert c.bytes_total == pytest.approx(expected, rel=1e-12)

    def test_solver_flops_match_table1(self, ti_periodic):
        h, _ = ti_periodic
        n, nnz = h.n_rows, h.nnz
        r, m = 3, 8
        scale = SpectralScale.from_bounds(-8, 8)
        blk = make_block_vector(n, r, seed=0)
        c = PerfCounters()
        compute_eta(h, scale, m, blk, "aug_spmmv", counters=c)
        iters = m // 2 - 1
        expected = iters * kpm_flops(n, nnz, r, 2) + r * nnz * 8
        assert c.flops == pytest.approx(expected)
