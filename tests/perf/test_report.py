"""Performance-report generator."""

import pytest

from repro.perf.arch import EMMY_NODE
from repro.perf.report import (
    architecture_table,
    balance_section,
    cluster_section,
    device_section,
    full_report,
    node_section,
)


class TestSections:
    def test_architecture_table_lists_all(self):
        text = architecture_table()
        for name in ("IVB", "SNB", "K20m", "K20X"):
            assert name in text
        assert "176.0" in text  # IVB peak

    def test_balance_section_values(self):
        text = balance_section(1_000_000, 13.0, 32, 2000)
        assert "2.232" in text  # Eq. (6)
        assert "0.348" in text  # Eq. (7)
        assert "V_KPM" in text

    def test_device_section_rows(self):
        text = device_section(32, 13.0)
        assert text.count("\n") >= 5
        assert "K20X" in text

    def test_node_section_emmy(self):
        text = node_section(EMMY_NODE, 32)
        assert "2 CPU + 2 GPU" in text
        assert "hetero" in text

    def test_cluster_section_variants(self):
        text = cluster_section((400, 400, 40), 4, 2000, 32)
        for variant in ("aug_spmv", "aug_spmmv*", "aug_spmmv"):
            assert variant in text
        assert "node-hours" in text


class TestFullReport:
    def test_contains_all_sections(self):
        text = full_report(nx=20, ny=20, nz=8, nodes=4)
        for header in (
            "ARCHITECTURES", "ACCOUNTING", "DEVICE ROOFLINES",
            "NODE LEVEL", "CLUSTER",
        ):
            assert header in text

    def test_validates_nodes(self):
        with pytest.raises(ValueError):
            full_report(nodes=0)
