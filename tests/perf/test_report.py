"""Performance-report generator."""

import pytest

from repro.perf.arch import EMMY_NODE
from repro.perf.report import (
    architecture_table,
    balance_section,
    cluster_section,
    device_section,
    expected_counters,
    full_report,
    measured_vs_model_section,
    node_section,
    trace_section,
)


class TestSections:
    def test_architecture_table_lists_all(self):
        text = architecture_table()
        for name in ("IVB", "SNB", "K20m", "K20X"):
            assert name in text
        assert "176.0" in text  # IVB peak

    def test_balance_section_values(self):
        text = balance_section(1_000_000, 13.0, 32, 2000)
        assert "2.232" in text  # Eq. (6)
        assert "0.348" in text  # Eq. (7)
        assert "V_KPM" in text

    def test_device_section_rows(self):
        text = device_section(32, 13.0)
        assert text.count("\n") >= 5
        assert "K20X" in text

    def test_node_section_emmy(self):
        text = node_section(EMMY_NODE, 32)
        assert "2 CPU + 2 GPU" in text
        assert "hetero" in text

    def test_cluster_section_variants(self):
        text = cluster_section((400, 400, 40), 4, 2000, 32)
        for variant in ("aug_spmv", "aug_spmmv*", "aug_spmmv"):
            assert variant in text
        assert "node-hours" in text


@pytest.fixture(scope="module")
def small_system():
    from repro.core.scaling import lanczos_scale
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(5, 4, 3)
    return h, lanczos_scale(h, seed=0)


class TestExpectedCounters:
    """The analytic re-charge must equal the measured runtime charge."""

    @pytest.mark.parametrize("engine", ["naive", "aug_spmv", "aug_spmmv"])
    @pytest.mark.parametrize("r", [1, 4])
    def test_matches_measured_exactly(self, small_system, engine, r):
        from repro.core.moments import compute_eta
        from repro.core.stochastic import make_block_vector
        from repro.util.counters import PerfCounters

        h, scale = small_system
        blk = make_block_vector(h.n_rows, r, seed=3)
        measured = PerfCounters()
        compute_eta(h, scale, 8, blk, engine, measured, backend="numpy")
        exp = expected_counters(h, 8, r, engine)
        assert measured.bytes_loaded == exp.bytes_loaded
        assert measured.bytes_stored == exp.bytes_stored
        assert measured.flops == exp.flops

    def test_rejects_odd_moments(self, small_system):
        with pytest.raises(ValueError):
            expected_counters(small_system[0], 7, 2)

    def test_rejects_unknown_engine(self, small_system):
        with pytest.raises(ValueError):
            expected_counters(small_system[0], 8, 2, "warp")


class TestMeasuredVsModel:
    def test_exact_match_reported(self, small_system):
        from repro.core.moments import compute_eta
        from repro.core.stochastic import make_block_vector
        from repro.obs import MetricsRegistry
        from repro.util.counters import PerfCounters

        h, scale = small_system
        blk = make_block_vector(h.n_rows, 4, seed=3)
        counters = PerfCounters()
        metrics = MetricsRegistry()
        compute_eta(h, scale, 8, blk, "aug_spmmv", counters,
                    backend="numpy", metrics=metrics)
        text = measured_vs_model_section(
            h, counters, 8, 4, "aug_spmmv", metrics=metrics)
        assert "exact match: yes" in text
        assert "V_KPM" in text
        assert "aug_spmmv" in text  # the per-kernel table

    def test_divergence_flagged(self, small_system):
        from repro.util.counters import PerfCounters

        h, _ = small_system
        skewed = PerfCounters()
        skewed.charge("spmmv", loads=1, stores=1, flops=1)
        text = measured_vs_model_section(h, skewed, 8, 4, "aug_spmmv")
        assert "exact match: NO" in text


class TestTraceSection:
    def test_table_from_records(self):
        records = [
            {"name": "spmv", "dt": 0.25, "bytes": 100, "flops": 50},
            {"name": "spmv", "dt": 0.25, "bytes": 100, "flops": 50},
            {"name": "reconstruct", "dt": 0.1},
        ]
        text = trace_section(records)
        assert "spmv" in text and "reconstruct" in text
        assert "2.000" in text or "2 " in text  # B/F of the spmv rows


class TestFullReport:
    def test_contains_all_sections(self):
        text = full_report(nx=20, ny=20, nz=8, nodes=4)
        for header in (
            "ARCHITECTURES", "ACCOUNTING", "DEVICE ROOFLINES",
            "NODE LEVEL", "CLUSTER",
        ):
            assert header in text

    def test_validates_nodes(self):
        with pytest.raises(ValueError):
            full_report(nodes=0)
