"""LRU cache simulator: semantics, stack property, Omega measurements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.cachesim import LRUCache, kpm_access_stream, simulate_kpm_omega
from repro.physics import build_topological_insulator
from repro.util.constants import S_D, S_I


class TestLRUCache:
    def test_compulsory_misses_only_when_big(self):
        c = LRUCache(1 << 20, line_bytes=64)
        lines = np.array([1, 2, 3, 1, 2, 3, 1])
        c.access_lines(lines)
        assert c.misses == 3
        assert c.hits == 4

    def test_zero_capacity_all_miss(self):
        c = LRUCache(0, line_bytes=64)
        c.access_lines(np.array([1, 1, 1]))
        assert c.misses == 3

    def test_lru_eviction_order(self):
        c = LRUCache(2 * 64, line_bytes=64)
        c.access_lines(np.array([1, 2, 1, 3, 2]))
        # after [1,2,1]: cache {2,1}; 3 evicts 2; final 2 misses again
        assert c.misses == 4
        assert c.hits == 1

    def test_byte_access_spans_lines(self):
        c = LRUCache(1 << 20, line_bytes=64)
        c.access_bytes(np.array([60]), 8)  # crosses a line boundary
        assert c.misses == 2

    def test_miss_bytes(self):
        c = LRUCache(1 << 20, line_bytes=64)
        c.access_lines(np.array([5, 6]))
        assert c.miss_bytes == 128

    def test_reset_stats_keeps_content(self):
        c = LRUCache(1 << 20, line_bytes=64)
        c.access_lines(np.array([1]))
        c.reset_stats()
        c.access_lines(np.array([1]))
        assert c.hits == 1 and c.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=200),
    st.integers(1, 8),
    st.integers(1, 8),
)
@settings(max_examples=50, deadline=None)
def test_lru_stack_property(trace, cap_small, extra):
    """A larger LRU cache never misses more on the same trace."""
    lines = np.array(trace)
    small = LRUCache(cap_small * 64, 64)
    big = LRUCache((cap_small + extra) * 64, 64)
    small.access_lines(lines)
    big.access_lines(lines)
    assert big.misses <= small.misses


class TestKpmStream:
    @pytest.fixture(scope="class")
    def ti(self):
        h, _ = build_topological_insulator(6, 6, 3)
        return h

    def test_stream_volume_matches_minimum(self, ti):
        """Total accessed bytes = matrix + gathers + 3 row streams."""
        r = 4
        stream = kpm_access_stream(ti, r)
        total = int(stream.sizes.sum())
        n, nnz = ti.n_rows, ti.nnz
        expected = nnz * (S_D + S_I) + nnz * r * S_D + 3 * n * r * S_D
        assert total == expected

    def test_naive_stream_multiple_passes(self, ti):
        """Naive replays the vectors over separate BLAS-1 passes: 12 row
        streams (u,3,2,3,1,2) vs the fused kernel's 3 — 9 N S_d extra
        (the per-entry v gathers are identical in both streams)."""
        s3 = kpm_access_stream(ti, 1, stage="aug_spmmv")
        s13 = kpm_access_stream(ti, 1, stage="naive")
        n = ti.n_rows
        assert int(s13.sizes.sum()) - int(s3.sizes.sum()) == 9 * n * S_D

    def test_omega_at_least_one_with_small_cache(self, ti):
        om = simulate_kpm_omega(ti, 2, cache_bytes=16 << 10)
        assert om >= 1.0

    def test_infinite_cache_omega_below_one(self, ti):
        """With everything cached after warmup, only streaming stores
        remain below the per-iteration minimum -> Omega < 1 is possible
        for the *steady-state* measurement; it must be tiny but positive."""
        om = simulate_kpm_omega(ti, 2, cache_bytes=1 << 30)
        assert 0 <= om < 1.0

    def test_omega_grows_under_pressure(self, ti):
        big = simulate_kpm_omega(ti, 4, cache_bytes=1 << 22)
        small = simulate_kpm_omega(ti, 4, cache_bytes=1 << 16)
        assert small >= big

    def test_naive_measured_traffic_exceeds_blocked(self, ti):
        cache = 1 << 14  # far smaller than the working set
        v_min = ti.nnz * (S_D + S_I) + 3 * 1 * ti.n_rows * S_D
        om_naive = simulate_kpm_omega(ti, 1, cache, stage="naive")
        om_blocked = simulate_kpm_omega(ti, 1, cache, stage="aug_spmmv")
        v_naive_min = ti.nnz * (S_D + S_I) + 13 * ti.n_rows * S_D
        assert om_naive * v_naive_min > om_blocked * v_min
