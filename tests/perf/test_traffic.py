"""Analytic per-level traffic models (paper Figs. 9-10 shapes)."""

import pytest

from repro.perf.arch import K20M
from repro.perf.traffic import gpu_level_traffic, omega_parametric

N = 1_600_000  # the paper's 100x100x40 domain
NNZR = 13.0


class TestOmega:
    def test_at_least_one(self):
        for r in (1, 4, 16, 64):
            assert omega_parametric(r, N, NNZR, 25 << 20, 80_000) >= 1.0

    def test_monotone_in_r(self):
        vals = [
            omega_parametric(r, N, NNZR, 25 << 20, 80_000)
            for r in (1, 8, 16, 32, 64)
        ]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_small_r_is_one(self):
        """Paper Fig. 8: Omega = 1 for small R on IVB."""
        assert omega_parametric(1, N, NNZR, 25 << 20, 80_000) == 1.0
        assert omega_parametric(4, N, NNZR, 25 << 20, 80_000) == 1.0

    def test_r32_near_paper_value(self):
        """Paper Fig. 8 annotation: Omega ~= 1.54 at R = 32."""
        om = omega_parametric(32, N, NNZR, 25 << 20, 80_000)
        assert 1.3 <= om <= 1.7

    def test_bigger_cache_smaller_omega(self):
        small = omega_parametric(32, N, NNZR, 10 << 20, 80_000)
        big = omega_parametric(32, N, NNZR, 100 << 20, 80_000)
        assert big <= small

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            omega_parametric(0, N, NNZR, 1 << 20, 100)


class TestGpuTraffic:
    def test_dram_per_vector_decreases(self):
        """Paper Fig. 9: accumulated volume per vector shrinks with R."""
        vols = [
            gpu_level_traffic("spmmv", r, N, NNZR, K20M).per_vector(r).dram
            for r in (1, 8, 16, 32, 64)
        ]
        assert all(b < a for a, b in zip(vols, vols[1:]))

    def test_tex_scales_linearly_with_r(self):
        """Paper Section V-B: texture traffic scales linearly with R."""
        t8 = gpu_level_traffic("spmmv", 8, N, NNZR, K20M).tex
        t16 = gpu_level_traffic("spmmv", 16, N, NNZR, K20M).tex
        t64 = gpu_level_traffic("spmmv", 64, N, NNZR, K20M).tex
        assert t16 == pytest.approx(2 * t8, rel=0.05)
        assert t64 == pytest.approx(8 * t8, rel=0.05)

    def test_augmented_adds_w_stream(self):
        plain = gpu_level_traffic("spmmv", 8, N, NNZR, K20M)
        aug = gpu_level_traffic("aug_spmmv_nodot", 8, N, NNZR, K20M)
        assert aug.dram > plain.dram

    def test_dots_do_not_change_traffic(self):
        """Fig. 10(b) vs (c): same volumes, different *time* (latency)."""
        nodot = gpu_level_traffic("aug_spmmv_nodot", 16, N, NNZR, K20M)
        full = gpu_level_traffic("aug_spmmv", 16, N, NNZR, K20M)
        assert nodot.dram == full.dram
        assert nodot.l2 == full.l2
        assert nodot.tex == full.tex

    def test_r1_dram_dominated_by_matrix(self):
        t = gpu_level_traffic("spmmv", 1, N, NNZR, K20M)
        matrix_bytes = NNZR * N * 20
        assert t.dram == pytest.approx(matrix_bytes, rel=0.35)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            gpu_level_traffic("magic", 1, N, NNZR, K20M)
