"""Energy-to-solution model."""

import pytest

from repro.perf.arch import EMMY_NODE, IVB, K20X, PIZ_DAINT_NODE, Architecture
from repro.perf.energy import (
    DEVICE_TDP_W,
    EnergyModel,
    variant_energy_table,
)


class TestPower:
    def test_device_power_active_idle(self):
        em = EnergyModel()
        assert em.device_power(K20X) == DEVICE_TDP_W["K20X"]
        assert em.device_power(K20X, active=False) == pytest.approx(
            0.35 * DEVICE_TDP_W["K20X"]
        )

    def test_node_power_sums_devices(self):
        em = EnergyModel(node=PIZ_DAINT_NODE)
        expected = 100.0 + DEVICE_TDP_W["SNB"] + DEVICE_TDP_W["K20X"]
        assert em.node_power() == pytest.approx(expected)

    def test_emmy_node_heavier(self):
        assert EnergyModel(node=EMMY_NODE).node_power() > EnergyModel(
            node=PIZ_DAINT_NODE
        ).node_power()

    def test_unknown_device(self):
        em = EnergyModel()
        fake = Architecture(
            name="X1", kind="cpu", clock_mhz=1, simd_bytes=1, cores=1,
            bandwidth_gbs=1, llc_mib=1, peak_gflops=1,
        )
        with pytest.raises(ValueError):
            em.device_power(fake)


class TestEnergy:
    def test_energy_scales_with_time_and_nodes(self):
        em = EnergyModel()
        e1 = em.energy_to_solution_kwh(100.0, 10)
        assert em.energy_to_solution_kwh(200.0, 10) == pytest.approx(2 * e1)
        assert em.energy_to_solution_kwh(100.0, 20) == pytest.approx(2 * e1)

    def test_idle_gpu_saves_energy(self):
        em = EnergyModel()
        full = em.energy_to_solution_kwh(100.0, 1)
        cpu_only = em.energy_to_solution_kwh(100.0, 1, gpus_active=False)
        assert cpu_only < full

    def test_validation(self):
        em = EnergyModel()
        with pytest.raises(ValueError):
            em.energy_to_solution_kwh(-1.0, 1)
        with pytest.raises(ValueError):
            em.energy_to_solution_kwh(1.0, 0)


class TestVariantTable:
    def test_blocked_cheapest(self):
        rows = {r["variant"]: r for r in variant_energy_table()}
        assert rows["aug_spmmv"]["energy_kwh"] < rows["aug_spmmv*"]["energy_kwh"]
        assert rows["aug_spmmv"]["energy_kwh"] < rows["aug_spmv"]["energy_kwh"]

    def test_energy_tracks_node_hours(self):
        """Constant node power makes energy proportional to node-hours."""
        rows = variant_energy_table()
        ratios = [r["energy_kwh"] / r["node_hours"] for r in rows]
        assert max(ratios) == pytest.approx(min(ratios), rel=1e-9)

    def test_throughput_penalty_factor(self):
        rows = {r["variant"]: r for r in variant_energy_table()}
        penalty = rows["aug_spmv"]["energy_kwh"] / rows["aug_spmmv"]["energy_kwh"]
        assert penalty > 1.9  # mirrors the Table III node-hour gap
