"""Dirac Gamma matrices: Clifford algebra and block structure."""

import numpy as np
import pytest

from repro.physics.dirac import (
    GAMMA,
    check_clifford,
    gamma_matrices,
    hopping_block,
    onsite_block,
)


class TestCliffordAlgebra:
    def test_gamma0_identity(self):
        assert np.allclose(GAMMA[0], np.eye(4))

    @pytest.mark.parametrize("a", [1, 2, 3, 4])
    def test_hermitian(self, a):
        assert np.allclose(GAMMA[a], GAMMA[a].conj().T)

    @pytest.mark.parametrize("a", [1, 2, 3, 4])
    def test_unit_square(self, a):
        assert np.allclose(GAMMA[a] @ GAMMA[a], np.eye(4))

    @pytest.mark.parametrize("a,b", [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)])
    def test_anticommute(self, a, b):
        anti = GAMMA[a] @ GAMMA[b] + GAMMA[b] @ GAMMA[a]
        assert np.allclose(anti, 0)

    @pytest.mark.parametrize("a", [1, 2, 3, 4])
    def test_traceless(self, a):
        assert abs(np.trace(GAMMA[a])) < 1e-14

    def test_check_clifford_passes(self):
        assert check_clifford()
        assert check_clifford(gamma_matrices())

    def test_check_clifford_detects_violation(self):
        bad = [g.copy() for g in gamma_matrices()]
        bad[2] = bad[1]  # Gamma_2 == Gamma_1 no longer anticommutes
        assert not check_clifford(bad)

    def test_check_clifford_detects_nonhermitian(self):
        bad = [g.copy() for g in gamma_matrices()]
        bad[3] = bad[3] * 1j
        assert not check_clifford(bad)


class TestBlocks:
    def test_onsite_block_diagonal(self):
        """Diagonality of the on-site block yields the 13-entry stencil."""
        blk = onsite_block(0.7, mass=1.0)
        assert np.allclose(blk, np.diag(np.diag(blk)))

    def test_onsite_block_values(self):
        blk = onsite_block(0.5, mass=2.0)
        assert np.allclose(np.diag(blk), 0.5 + 4.0 * np.diag(GAMMA[1]))

    @pytest.mark.parametrize("j", [1, 2, 3])
    def test_hopping_two_entries_per_row(self, j):
        blk = hopping_block(j, t=1.0)
        per_row = (np.abs(blk) > 1e-14).sum(axis=1)
        assert np.all(per_row == 2)

    @pytest.mark.parametrize("j", [1, 2, 3])
    def test_hopping_scales_with_t(self, j):
        assert np.allclose(hopping_block(j, 2.5), 2.5 * hopping_block(j, 1.0))

    def test_hopping_direction_validated(self):
        with pytest.raises(ValueError):
            hopping_block(4)
        with pytest.raises(ValueError):
            hopping_block(0)

    def test_hopping_plus_conjugate_is_hermitian_pair(self):
        """T + T^H (same-site limit) must be Hermitian."""
        for j in (1, 2, 3):
            t = hopping_block(j)
            assert np.allclose(t + t.conj().T, (t + t.conj().T).conj().T)
