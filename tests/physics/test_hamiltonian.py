"""The TI Hamiltonian: structure, Hermiticity, spectrum, plane waves."""

import numpy as np
import pytest

from repro.physics.hamiltonian import (
    TopologicalInsulatorModel,
    build_topological_insulator,
    plane_wave_vector,
)
from repro.physics.lattice import Lattice3D
from repro.physics.potentials import dot_superlattice_potential


class TestStructure:
    def test_dimension(self, ti_small):
        h, model = ti_small
        assert h.n_rows == 4 * 6 * 5 * 4 == model.dimension

    def test_hermitian(self, ti_small):
        h, _ = ti_small
        assert h.is_hermitian()

    def test_hermitian_with_potential(self):
        lat = Lattice3D(4, 4, 3)
        model = TopologicalInsulatorModel(lat)
        pot = dot_superlattice_potential(lat, 0.5, spacing=2, radius=1.0)
        assert model.build(pot).is_hermitian()

    def test_nnz_fully_periodic_is_13_per_row(self, ti_periodic):
        h, _ = ti_periodic
        assert np.all(h.nnz_per_row == 13)

    def test_nnz_matches_expected_count(self, ti_small):
        h, model = ti_small
        assert h.nnz == model.expected_nnz()

    def test_open_z_fewer_entries_on_faces(self, ti_small):
        h, model = ti_small
        lat = model.lattice
        # rows on the z=0 face miss one neighbor: 11 entries instead of 13
        face = lat.boundary_sites(2, 0)
        face_rows = 4 * face
        assert np.all(h.nnz_per_row[face_rows] == 11)

    def test_nnzr_about_13(self):
        h, _ = build_topological_insulator(10, 10, 10)
        assert 12.0 < h.nnzr <= 13.0

    def test_periodic_corner_diagonals(self):
        """Periodic x/y produce the 'outlying diagonals in the corners'."""
        h, _ = build_topological_insulator(6, 4, 2)
        assert h.bandwidth() > 4 * 6 * 4  # wrap in y reaches across planes

    def test_potential_shape_validated(self, ti_small):
        _, model = ti_small
        with pytest.raises(ValueError, match="potential"):
            model.build(np.zeros(3))


class TestSpectrum:
    def test_within_gershgorin(self, ti_small):
        h, _ = ti_small
        lam = np.linalg.eigvalsh(h.to_dense())
        lo, hi = h.gershgorin_bounds()
        assert lo <= lam.min() and lam.max() <= hi

    def test_clean_spectrum_symmetric(self, ti_periodic):
        """The clean TI model is particle-hole symmetric: the spectrum is
        symmetric around 0 (chiral partner via the anticommuting Gammas)."""
        h, _ = ti_periodic
        lam = np.linalg.eigvalsh(h.to_dense())
        assert np.allclose(lam, -lam[::-1], atol=1e-9)

    def test_bulk_gap_present(self):
        """The paper's parameters put the model in an insulating phase
        with a gap around E = 0 for a fully periodic (bulk) sample."""
        h, _ = build_topological_insulator(6, 6, 6, pbc=(True, True, True))
        lam = np.linalg.eigvalsh(h.to_dense())
        gap = lam[lam > 0].min() - lam[lam < 0].max()
        assert gap > 0.5

    def test_potential_shifts_spectrum(self, ti_small):
        h0, model = ti_small
        pot = np.full(model.lattice.n_sites, 0.3)
        h1 = model.build(pot)
        lam0 = np.linalg.eigvalsh(h0.to_dense())
        lam1 = np.linalg.eigvalsh(h1.to_dense())
        assert np.allclose(lam1, lam0 + 0.3, atol=1e-9)

    def test_hopping_scale(self):
        """Doubling t doubles the clean spectrum (mass scales with t here
        only through the explicit mass parameter, kept proportional)."""
        h1, _ = build_topological_insulator(4, 4, 2, t=1.0, mass=1.0)
        h2, _ = build_topological_insulator(4, 4, 2, t=2.0, mass=2.0)
        lam1 = np.linalg.eigvalsh(h1.to_dense())
        lam2 = np.linalg.eigvalsh(h2.to_dense())
        assert np.allclose(lam2, 2 * lam1, atol=1e-9)


class TestPlaneWave:
    def test_normalized(self):
        lat = Lattice3D(6, 6, 2)
        psi = plane_wave_vector(lat, (0.5, -0.3, 0.0), orbital=1)
        assert np.linalg.norm(psi) == pytest.approx(1.0)

    def test_orbital_selection(self):
        lat = Lattice3D(4, 4, 1)
        psi = plane_wave_vector(lat, (0, 0, 0), orbital=2)
        nz = np.nonzero(psi)[0]
        assert np.all(nz % 4 == 2)

    def test_invalid_orbital(self):
        with pytest.raises(ValueError):
            plane_wave_vector(Lattice3D(2, 2, 1), (0, 0, 0), orbital=4)

    def test_k0_is_uniform(self):
        lat = Lattice3D(3, 3, 3)
        psi = plane_wave_vector(lat, (0, 0, 0), orbital=0)
        vals = psi[0::4]
        assert np.allclose(vals, vals[0])

    def test_bloch_phase(self):
        lat = Lattice3D(8, 1, 1)
        k = 2 * np.pi / 8
        psi = plane_wave_vector(lat, (k, 0, 0), orbital=0)
        ratio = psi[4] / psi[0]  # site x=1 over x=0, orbital 0
        assert ratio == pytest.approx(np.exp(1j * k))
