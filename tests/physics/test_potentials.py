"""Quantum-dot and disorder potentials."""

import numpy as np
import pytest

from repro.physics.lattice import Lattice3D
from repro.physics.potentials import (
    disorder_potential,
    dot_superlattice_potential,
    single_dot_potential,
    zero_potential,
)


@pytest.fixture
def lat():
    return Lattice3D(20, 20, 4)


class TestZero:
    def test_all_zero(self, lat):
        v = zero_potential(lat)
        assert v.shape == (lat.n_sites,)
        assert np.all(v == 0)


class TestSingleDot:
    def test_surface_only(self, lat):
        v = single_dot_potential(lat, 1.0, radius=4.0)
        _, _, z = lat.all_coords()
        assert np.all(v[z > 0] == 0)
        assert np.any(v[z == 0] != 0)

    def test_bulk_dot(self, lat):
        v = single_dot_potential(lat, 1.0, radius=4.0, surface_only=False)
        _, _, z = lat.all_coords()
        assert np.any(v[z == 3] != 0)

    def test_value_inside(self, lat):
        v = single_dot_potential(lat, 0.7, radius=3.0, center=(10, 10))
        idx = lat.site_index(10, 10, 0)
        assert v[idx] == pytest.approx(0.7)

    def test_outside_zero(self, lat):
        v = single_dot_potential(lat, 0.7, radius=2.0, center=(10, 10))
        idx = lat.site_index(0, 0, 0)  # far away (minimum-image dist 10√2)
        assert v[idx] == 0.0

    def test_periodic_minimum_image(self):
        lat = Lattice3D(20, 20, 1, pbc=(True, True, False))
        v = single_dot_potential(lat, 1.0, radius=3.0, center=(0, 0))
        # site at (19, 0) is distance 1 through the periodic wrap
        assert v[lat.site_index(19, 0, 0)] == 1.0

    def test_smooth_profile_decays(self, lat):
        v = single_dot_potential(
            lat, 1.0, radius=3.0, center=(10, 10), smooth=True
        )
        c = v[lat.site_index(10, 10, 0)]
        mid = v[lat.site_index(13, 10, 0)]
        far = v[lat.site_index(19, 10, 0)]
        assert c > mid > far >= 0

    def test_radius_validated(self, lat):
        with pytest.raises(ValueError):
            single_dot_potential(lat, 1.0, radius=0.0)


class TestSuperlattice:
    def test_paper_defaults(self):
        """V_dot = 0.153, spacing D = 100 (paper Fig. 2)."""
        lat = Lattice3D(200, 200, 2)
        v = dot_superlattice_potential(lat)
        assert set(np.unique(v)) == {0.0, 0.153}

    def test_dot_count_matches_period(self):
        lat = Lattice3D(40, 40, 1)
        v = dot_superlattice_potential(lat, v_dot=1.0, spacing=10, radius=2.0)
        # 4x4 superlattice cells, each with one dot of ~pi*r^2 sites
        n_dots_sites = (v != 0).sum()
        per_dot = n_dots_sites / 16
        assert 9 <= per_dot <= 16  # ~13 sites in a radius-2 disk

    def test_periodic_tiling(self):
        lat = Lattice3D(20, 20, 1)
        v = dot_superlattice_potential(lat, v_dot=1.0, spacing=10, radius=2.0)
        grid = v.reshape(20, 20)  # z, then y-major? one z-layer: (y, x)
        # translation by one period maps the pattern onto itself
        assert np.allclose(grid, np.roll(grid, 10, axis=0))
        assert np.allclose(grid, np.roll(grid, 10, axis=1))

    def test_surface_flag(self):
        lat = Lattice3D(20, 20, 3)
        v = dot_superlattice_potential(lat, v_dot=1.0, spacing=10)
        _, _, z = lat.all_coords()
        assert np.all(v[z != 0] == 0)


class TestDisorder:
    def test_range(self):
        lat = Lattice3D(10, 10, 2)
        v = disorder_potential(lat, strength=2.0, seed=0)
        assert np.all(np.abs(v) <= 1.0)

    def test_reproducible(self):
        lat = Lattice3D(10, 10, 2)
        assert np.allclose(
            disorder_potential(lat, 1.0, seed=5),
            disorder_potential(lat, 1.0, seed=5),
        )

    def test_zero_strength(self):
        lat = Lattice3D(4, 4, 1)
        assert np.all(disorder_potential(lat, 0.0, seed=1) == 0)

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            disorder_potential(Lattice3D(2, 2, 1), -1.0)
