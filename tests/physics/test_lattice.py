"""3D lattice indexing and boundary conditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.lattice import Lattice3D


class TestIndexing:
    def test_roundtrip(self):
        lat = Lattice3D(5, 4, 3)
        n = np.arange(lat.n_sites)
        x, y, z = lat.site_coords(n)
        assert np.array_equal(lat.site_index(x, y, z), n)

    def test_x_fastest(self):
        lat = Lattice3D(5, 4, 3)
        assert lat.site_index(1, 0, 0) == 1
        assert lat.site_index(0, 1, 0) == 5
        assert lat.site_index(0, 0, 1) == 20

    def test_n_sites(self):
        assert Lattice3D(5, 4, 3).n_sites == 60

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Lattice3D(0, 4, 3)

    def test_all_coords_cover_lattice(self):
        lat = Lattice3D(3, 3, 2)
        x, y, z = lat.all_coords()
        assert len(set(zip(x.tolist(), y.tolist(), z.tolist()))) == 18


class TestNeighbors:
    def test_periodic_axis_full_count(self):
        lat = Lattice3D(4, 3, 2, pbc=(True, True, False))
        src, dst = lat.neighbor_pairs(0)
        assert src.size == lat.n_sites

    def test_open_axis_reduced_count(self):
        lat = Lattice3D(4, 3, 2, pbc=(True, True, False))
        src, dst = lat.neighbor_pairs(2)
        assert src.size == lat.n_sites // 2  # nz=2 -> half the sites hop up

    def test_periodic_wraps(self):
        lat = Lattice3D(4, 3, 2, pbc=(True, False, False))
        src, dst = lat.neighbor_pairs(0)
        # the site at x=3 must wrap to x=0
        x, y, z = lat.site_coords(src)
        wrapped = x == 3
        xd, yd, zd = lat.site_coords(dst[wrapped])
        assert np.all(xd == 0)

    def test_open_no_wrap(self):
        lat = Lattice3D(4, 3, 2, pbc=(False, False, False))
        src, dst = lat.neighbor_pairs(0)
        x, _, _ = lat.site_coords(src)
        assert np.all(x < 3)

    def test_extent_one_axis_empty(self):
        lat = Lattice3D(4, 1, 2, pbc=(True, True, True))
        src, dst = lat.neighbor_pairs(1)
        assert src.size == 0

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            Lattice3D(2, 2, 2).neighbor_pairs(3)

    def test_neighbors_differ_by_one_step(self):
        lat = Lattice3D(5, 4, 3, pbc=(True, True, False))
        for axis in range(3):
            src, dst = lat.neighbor_pairs(axis)
            xs, ys, zs = lat.site_coords(src)
            xd, yd, zd = lat.site_coords(dst)
            deltas = (xd - xs, yd - ys, zd - zs)
            extent = lat.extent(axis)
            ok = (deltas[axis] == 1) | (deltas[axis] == 1 - extent)
            assert np.all(ok)
            for other in range(3):
                if other != axis:
                    assert np.all(deltas[other] == 0)


class TestBoundary:
    def test_boundary_sites(self):
        lat = Lattice3D(3, 3, 4)
        low = lat.boundary_sites(2, 0)
        high = lat.boundary_sites(2, 1)
        assert low.size == high.size == 9
        _, _, zl = lat.site_coords(low)
        _, _, zh = lat.site_coords(high)
        assert np.all(zl == 0) and np.all(zh == 3)


@given(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6),
    st.tuples(st.booleans(), st.booleans(), st.booleans()),
)
@settings(max_examples=50, deadline=None)
def test_neighbor_pairs_are_injective(nx, ny, nz, pbc):
    """Each source site hops to at most one destination per axis."""
    lat = Lattice3D(nx, ny, nz, pbc=pbc)
    for axis in range(3):
        src, dst = lat.neighbor_pairs(axis)
        assert len(set(src.tolist())) == src.size
        assert src.size == dst.size
        if src.size:
            assert dst.min() >= 0 and dst.max() < lat.n_sites
