"""Graphene honeycomb model (second KPM workload)."""

import numpy as np
import pytest

from repro.physics.graphene import (
    GrapheneModel,
    build_graphene_dot_lattice,
    graphene_dot_potential,
)


class TestStructure:
    def test_dimensions(self):
        m = GrapheneModel(5, 4)
        assert m.n_sites == 40

    def test_three_neighbors_per_site(self):
        h, _ = build_graphene_dot_lattice(6, 6)
        # off-diagonal entries only (no potential): 3 per site
        assert np.all(h.nnz_per_row == 3)

    def test_hermitian(self):
        h, _ = build_graphene_dot_lattice(5, 5)
        assert h.is_hermitian()

    def test_bipartite_no_aa_coupling(self):
        h, _ = build_graphene_dot_lattice(4, 4)
        d = h.to_dense()
        # A (even) sites couple only to B (odd) sites
        assert np.allclose(d[0::2, 0::2], 0)
        assert np.allclose(d[1::2, 1::2], 0)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            GrapheneModel(0, 3)

    def test_potential_validated(self):
        m = GrapheneModel(3, 3)
        with pytest.raises(ValueError):
            m.build(np.zeros(5))


class TestSpectrum:
    def test_bandwidth_3t(self):
        """Nearest-neighbor graphene spectrum lies in [-3t, 3t]."""
        h, _ = build_graphene_dot_lattice(8, 8, t=1.0)
        lam = np.linalg.eigvalsh(h.to_dense())
        assert lam.min() >= -3.0 - 1e-9
        assert lam.max() <= 3.0 + 1e-9
        assert lam.max() == pytest.approx(3.0)  # k=0 state exists on 8x8

    def test_particle_hole_symmetric(self):
        h, _ = build_graphene_dot_lattice(6, 6)
        lam = np.linalg.eigvalsh(h.to_dense())
        assert np.allclose(lam, -lam[::-1], atol=1e-9)

    def test_dot_potential_breaks_symmetry(self):
        h, _ = build_graphene_dot_lattice(8, 8, v_dot=0.4, spacing=4.0)
        lam = np.linalg.eigvalsh(h.to_dense())
        assert not np.allclose(lam, -lam[::-1], atol=1e-6)


class TestGeometry:
    def test_positions_shape(self):
        m = GrapheneModel(4, 4)
        assert m.site_positions().shape == (32, 2)

    def test_nearest_neighbor_distance(self):
        """All coupled pairs sit at the graphene bond length 1/sqrt(3)."""
        m = GrapheneModel(6, 6)
        h = m.build()
        pos = m.site_positions()
        d = h.to_dense()
        rows, cols = np.nonzero(np.abs(d) > 0)
        # exclude wrap-around bonds when checking raw distances
        diff = pos[rows] - pos[cols]
        dist = np.linalg.norm(diff, axis=1)
        bond = 1.0 / np.sqrt(3.0)
        interior = dist < 2.0
        assert np.allclose(dist[interior], bond, atol=1e-9)

    def test_dot_potential_values(self):
        m = GrapheneModel(10, 10)
        v = graphene_dot_potential(m, 0.3, spacing=5.0, radius=1.0)
        assert set(np.unique(v)) <= {0.0, 0.3}
        assert (v != 0).sum() > 0
