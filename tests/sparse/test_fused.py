"""The augmented kernels: equivalence across optimization stages and the
traffic reduction that is the paper's central claim."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import (
    aug_spmmv_nodot_step,
    aug_spmmv_step,
    aug_spmv_step,
    block_dots,
    naive_kpm_step,
)
from repro.sparse.sell import SellMatrix
from repro.util.constants import S_D, S_I
from repro.util.counters import PerfCounters


@pytest.fixture
def setup(small_hermitian, rng):
    m, dense = small_hermitian
    n = 40
    v = rng.normal(size=n) + 1j * rng.normal(size=n)
    w = rng.normal(size=n) + 1j * rng.normal(size=n)
    a, b = 0.37, -0.21
    ref_w = 2 * a * (dense @ v - b * v) - w
    ref_even = float(np.vdot(v, v).real)
    ref_odd = complex(np.vdot(ref_w, v))
    return m, dense, v, w, a, b, ref_w, ref_even, ref_odd


class TestStageEquivalence:
    def test_naive_step(self, setup):
        m, _, v, w, a, b, ref_w, ref_even, ref_odd = setup
        w1 = w.copy()
        ee, eo = naive_kpm_step(m, v.copy(), w1, a, b)
        assert np.allclose(w1, ref_w)
        assert ee == pytest.approx(ref_even)
        assert eo == pytest.approx(ref_odd)

    def test_aug_spmv_step(self, setup):
        m, _, v, w, a, b, ref_w, ref_even, ref_odd = setup
        w1 = w.copy()
        ee, eo = aug_spmv_step(m, v.copy(), w1, a, b)
        assert np.allclose(w1, ref_w)
        assert ee == pytest.approx(ref_even)
        assert eo == pytest.approx(ref_odd)

    def test_aug_spmmv_step_columns_independent(self, setup, rng):
        m, dense, v, w, a, b, *_ = setup
        r = 4
        V = np.ascontiguousarray(
            rng.normal(size=(40, r)) + 1j * rng.normal(size=(40, r))
        )
        W = np.ascontiguousarray(
            rng.normal(size=(40, r)) + 1j * rng.normal(size=(40, r))
        )
        Wref = W.copy()
        ee, eo = aug_spmmv_step(m, V, W, a, b)
        for j in range(r):
            wj = Wref[:, j].copy()
            ee_j, eo_j = aug_spmv_step(m, V[:, j].copy(), wj, a, b)
            assert np.allclose(W[:, j], wj)
            assert ee[j] == pytest.approx(ee_j)
            assert eo[j] == pytest.approx(eo_j)

    def test_sell_backend(self, setup):
        m, _, v, w, a, b, ref_w, ref_even, ref_odd = setup
        s = SellMatrix(m, chunk_height=8, sigma=8)
        w1 = w.copy()
        ee, eo = aug_spmv_step(s, v.copy(), w1, a, b)
        assert np.allclose(w1, ref_w)
        assert ee == pytest.approx(ref_even)

    def test_nodot_plus_separate_dots(self, setup, rng):
        m, _, _, _, a, b, *_ = setup
        V = np.ascontiguousarray(
            rng.normal(size=(40, 3)) + 1j * rng.normal(size=(40, 3))
        )
        W = np.ascontiguousarray(
            rng.normal(size=(40, 3)) + 1j * rng.normal(size=(40, 3))
        )
        Wf = W.copy()
        ee_f, eo_f = aug_spmmv_step(m, V, Wf, a, b)
        aug_spmmv_nodot_step(m, V, W, a, b)
        assert np.allclose(W, Wf)
        ee, eo = block_dots(V, W)
        assert np.allclose(ee, ee_f)
        assert np.allclose(eo, eo_f)

    def test_scratch_reuse(self, setup):
        m, _, v, w, a, b, ref_w, *_ = setup
        scratch = np.empty(40, dtype=complex)
        w1 = w.copy()
        aug_spmv_step(m, v.copy(), w1, a, b, scratch=scratch)
        assert np.allclose(w1, ref_w)


class TestTrafficReduction:
    """Paper Eq. (4): 13 N S_d -> 3 N S_d -> amortized matrix."""

    def _run(self, m, step, r=1):
        c = PerfCounters()
        n = m.n_rows
        if r == 1:
            v = np.ones(n, dtype=complex)
            w = np.ones(n, dtype=complex)
            step(m, v, w, 0.5, 0.0, counters=c)
        else:
            V = np.ones((n, r), dtype=complex)
            W = np.ones((n, r), dtype=complex)
            step(m, V, W, 0.5, 0.0, counters=c)
        return c

    def test_naive_vector_traffic_13n(self, small_hermitian):
        m, _ = small_hermitian
        c = self._run(m, naive_kpm_step)
        vec_bytes = c.bytes_total - m.nnz * (S_D + S_I)
        assert vec_bytes == 13 * 40 * S_D

    def test_stage1_vector_traffic_3n(self, small_hermitian):
        m, _ = small_hermitian
        c = self._run(m, aug_spmv_step)
        vec_bytes = c.bytes_total - m.nnz * (S_D + S_I)
        assert vec_bytes == 3 * 40 * S_D

    def test_stage2_matrix_amortized(self, small_hermitian):
        m, _ = small_hermitian
        r = 8
        c_blocked = self._run(m, aug_spmmv_step, r=r)
        c_single = self._run(m, aug_spmv_step)
        # R separate stage-1 runs read the matrix R times
        assert c_blocked.bytes_total < r * c_single.bytes_total
        assert c_blocked.bytes_total == m.nnz * (S_D + S_I) + 3 * r * 40 * S_D

    def test_flops_identical_across_stages(self, small_hermitian):
        """The algorithm is untouched: optimizations only move bytes."""
        m, _ = small_hermitian
        f_naive = self._run(m, naive_kpm_step).flops
        f_stage1 = self._run(m, aug_spmv_step).flops
        f_stage2 = self._run(m, aug_spmmv_step, r=4).flops
        assert f_naive == f_stage1
        assert f_stage2 == 4 * f_stage1
