"""The kernel-backend registry: native/numpy parity and fallback.

Covers the ``repro.sparse.backend`` dispatch layer — registry semantics,
numerical parity of the compiled C kernels against the NumPy reference
on random Hermitian and TI matrices in both storage formats, identical
counter accounting, graceful fallback when the native kernels are
unavailable, and the no-per-iteration-allocation guarantee of the
workspace plans.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.scaling import SpectralScale
from repro.sparse.backend import (
    BACKEND_CHOICES,
    KernelBackend,
    KernelPlan,
    available_backends,
    get_backend,
)
from repro.sparse.backend.native import load_library, native_available
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE
from repro.util.counters import PerfCounters
from repro.util.errors import BackendError

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)


def _block(rng, n, r):
    return np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    ).astype(DTYPE)


@pytest.fixture(params=["random", "ti"])
def operator(request, small_hermitian, ti_small):
    """A CSR operator + matching SELL view + a spectral map."""
    if request.param == "random":
        m, _ = small_hermitian
        sell = SellMatrix(m, chunk_height=8, sigma=16)
    else:
        m, _ = ti_small
        sell = SellMatrix(m, chunk_height=16, sigma=64)
    scale = SpectralScale.from_bounds(*m.gershgorin_bounds())
    return m, sell, scale


class TestRegistry:
    def test_choices_cover_registered_backends(self):
        avail = available_backends()
        assert set(avail) == {"numpy", "native"}
        assert set(BACKEND_CHOICES) == {"auto", "numpy", "native"}
        assert avail["numpy"] is True

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown kernel backend"):
            get_backend("fortran")

    def test_instance_passthrough(self):
        bk = get_backend("numpy")
        assert get_backend(bk) is bk

    def test_none_means_auto(self):
        assert get_backend(None).name in ("numpy", "native")

    def test_plan_shapes(self, small_hermitian):
        m, _ = small_hermitian
        p1 = KernelPlan(m, 1)
        assert p1.u.shape == (m.n_rows,) and p1.work.shape == (m.n_rows,)
        p4 = KernelPlan(m, 4)
        assert p4.u.shape == (m.n_rows, 4)
        assert p4.eta_even.shape == (4,) and p4.eta_odd.shape == (4,)
        assert p4.eta_even.dtype == np.float64 and p4.eta_odd.dtype == DTYPE


@needs_native
class TestNativeParity:
    """Compiled C kernels agree with the NumPy reference."""

    def test_spmv(self, operator, rng):
        m, sell, _ = operator
        npb, nat = get_backend("numpy"), get_backend("native")
        x = _block(rng, m.n_cols, 1)[:, 0].copy()
        for A in (m, sell):
            assert np.allclose(
                nat.spmv(A, x), npb.spmv(A, x), atol=1e-12
            )

    @pytest.mark.parametrize("r", [1, 4, 32])
    def test_spmmv(self, operator, rng, r):
        m, sell, _ = operator
        npb, nat = get_backend("numpy"), get_backend("native")
        X = _block(rng, m.n_cols, r)
        for A in (m, sell):
            assert np.allclose(
                nat.spmmv(A, X), npb.spmmv(A, X), atol=1e-12
            )

    def test_aug_spmv_step(self, operator, rng):
        m, sell, scale = operator
        npb, nat = get_backend("numpy"), get_backend("native")
        v = _block(rng, m.n_cols, 1)[:, 0].copy()
        w0 = _block(rng, m.n_rows, 1)[:, 0].copy()
        for A in (m, sell):
            wa, wb = w0.copy(), w0.copy()
            ee_n, eo_n = npb.aug_spmv_step(A, v, wa, scale.a, scale.b)
            ee_c, eo_c = nat.aug_spmv_step(A, v, wb, scale.a, scale.b)
            assert np.allclose(wa, wb, atol=1e-10)
            assert ee_n == pytest.approx(ee_c, rel=1e-10)
            assert eo_n == pytest.approx(eo_c, rel=1e-10)

    @pytest.mark.parametrize("r", [1, 4, 32])
    def test_aug_spmmv_step(self, operator, rng, r):
        m, sell, scale = operator
        npb, nat = get_backend("numpy"), get_backend("native")
        V = _block(rng, m.n_cols, r)
        W0 = _block(rng, m.n_rows, r)
        for A in (m, sell):
            wa, wb = W0.copy(), W0.copy()
            pa, pb = npb.plan(A, r), nat.plan(A, r)
            ee_n, eo_n = npb.aug_spmmv_step(
                A, V, wa, scale.a, scale.b, plan=pa
            )
            ee_c, eo_c = nat.aug_spmmv_step(
                A, V, wb, scale.a, scale.b, plan=pb
            )
            assert np.allclose(wa, wb, atol=1e-10)
            assert np.allclose(ee_n, ee_c, rtol=1e-10)
            assert np.allclose(eo_n, eo_c, rtol=1e-10, atol=1e-12)

    def test_naive_step(self, operator, rng):
        m, _, scale = operator
        npb, nat = get_backend("numpy"), get_backend("native")
        v = _block(rng, m.n_cols, 1)[:, 0].copy()
        w0 = _block(rng, m.n_rows, 1)[:, 0].copy()
        wa, wb = w0.copy(), w0.copy()
        ee_n, eo_n = npb.naive_step(m, v, wa, scale.a, scale.b)
        ee_c, eo_c = nat.naive_step(m, v, wb, scale.a, scale.b)
        assert np.allclose(wa, wb, atol=1e-10)
        assert ee_n == pytest.approx(ee_c, rel=1e-10)
        assert eo_n == pytest.approx(eo_c, rel=1e-10)

    def test_rectangular_block(self, ti_small, rng):
        """V with halo rows: dots and update run over the first n rows."""
        m, _ = ti_small
        scale = SpectralScale.from_bounds(*m.gershgorin_bounds())
        npb, nat = get_backend("numpy"), get_backend("native")
        # widen the column space to fake a local+halo layout
        wide = CSRMatrix(
            m.indptr, m.indices, m.data, shape=(m.n_rows, m.n_rows + 32)
        )
        V = _block(rng, wide.n_cols, 4)
        W0 = _block(rng, wide.n_rows, 4)
        wa, wb = W0.copy(), W0.copy()
        ee_n, eo_n = npb.aug_spmmv_step(wide, V, wa, scale.a, scale.b)
        ee_c, eo_c = nat.aug_spmmv_step(wide, V, wb, scale.a, scale.b)
        assert np.allclose(wa, wb, atol=1e-10)
        assert np.allclose(ee_n, ee_c, rtol=1e-10)
        assert np.allclose(eo_n, eo_c, rtol=1e-10, atol=1e-12)

    def test_moments_parity(self, ti_small):
        from repro.core.moments import compute_eta
        from repro.core.stochastic import make_block_vector

        m, _ = ti_small
        scale = SpectralScale.from_bounds(*m.gershgorin_bounds())
        block = make_block_vector(m.n_rows, 4, seed=7)
        for engine in ("naive", "aug_spmv", "aug_spmmv"):
            eta_np = compute_eta(
                m, scale, 16, block, engine=engine, backend="numpy"
            )
            eta_c = compute_eta(
                m, scale, 16, block, engine=engine, backend="native"
            )
            assert np.allclose(eta_np, eta_c, atol=1e-9), engine

    def test_counters_identical(self, operator, rng):
        """Table-I accounting is backend-independent."""
        m, sell, scale = operator
        npb, nat = get_backend("numpy"), get_backend("native")
        V = _block(rng, m.n_cols, 4)
        W = _block(rng, m.n_rows, 4)
        for A in (m, sell):
            c_np, c_nat = PerfCounters(), PerfCounters()
            npb.spmv(A, V[:, 0].copy(), counters=c_np)
            npb.spmmv(A, V, counters=c_np)
            npb.aug_spmv_step(
                A, V[:, 0].copy(), W[:, 0].copy(), scale.a, scale.b,
                counters=c_np,
            )
            npb.aug_spmmv_step(A, V, W.copy(), scale.a, scale.b, counters=c_np)
            nat.spmv(A, V[:, 0].copy(), counters=c_nat)
            nat.spmmv(A, V, counters=c_nat)
            nat.aug_spmv_step(
                A, V[:, 0].copy(), W[:, 0].copy(), scale.a, scale.b,
                counters=c_nat,
            )
            nat.aug_spmmv_step(
                A, V, W.copy(), scale.a, scale.b, counters=c_nat
            )
            assert c_np.bytes_total == c_nat.bytes_total
            assert c_np.flops == c_nat.flops


class TestFallback:
    def test_disable_env_forces_numpy(self, monkeypatch):
        """REPRO_NATIVE_DISABLE: auto resolves to numpy, native errors."""
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert load_library(force_reload=True) is None
        try:
            auto = get_backend("auto")
            assert auto.name == "numpy"
            with pytest.raises(BackendError, match="REPRO_NATIVE_DISABLE"):
                get_backend("native")
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            load_library(force_reload=True)

    def test_disabled_results_identical(self, monkeypatch, ti_small):
        """A solve under forced fallback matches the numpy backend exactly."""
        from repro.core.moments import compute_eta
        from repro.core.stochastic import make_block_vector

        m, _ = ti_small
        scale = SpectralScale.from_bounds(*m.gershgorin_bounds())
        block = make_block_vector(m.n_rows, 2, seed=3)
        reference = compute_eta(m, scale, 8, block, backend="numpy")
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        load_library(force_reload=True)
        try:
            fallback = compute_eta(m, scale, 8, block, backend="auto")
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            load_library(force_reload=True)
        np.testing.assert_array_equal(reference, fallback)

    def test_compile_timeout_env_knob(self, monkeypatch):
        from repro.sparse.backend import native

        assert native._compile_timeout() == native.COMPILE_TIMEOUT
        monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", "7.5")
        assert native._compile_timeout() == 7.5
        # a malformed value must not take the run down with it
        monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", "soon")
        assert native._compile_timeout() == native.COMPILE_TIMEOUT
        # non-positive timeouts would make every compile fail instantly
        # (subprocess treats 0/negative as an immediate expiry): they
        # fall back to the default instead of poisoning the backend
        for bad in ("0", "-3", "0.0"):
            monkeypatch.setenv("REPRO_NATIVE_COMPILE_TIMEOUT", bad)
            assert native._compile_timeout() == native.COMPILE_TIMEOUT

    def test_compile_failure_warns_and_falls_back(self, monkeypatch,
                                                  tmp_path):
        """A broken compiler degrades to numpy with one warning, no crash."""
        from repro.obs import GLOBAL_METRICS

        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))  # no .so cache
        monkeypatch.setenv("CC", "/bin/false")
        before = GLOBAL_METRICS.counters.get(
            "backend.native.compile_failures", 0)
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert load_library(force_reload=True) is None
            assert get_backend("auto").name == "numpy"
        finally:
            monkeypatch.delenv("CC")
            monkeypatch.delenv("REPRO_NATIVE_CACHE")
            load_library(force_reload=True)
        after = GLOBAL_METRICS.counters.get(
            "backend.native.compile_failures", 0)
        assert after == before + 1


@pytest.mark.parametrize("backend", ["numpy", "auto"])
class TestNoPerIterationAllocation:
    """The workspace plans make the steady-state iteration allocation-free.

    Small per-call allocations ((R,) eta outputs, ctypes wrappers) are
    fine; what must never appear is an O(N) or O(N, R) temporary — the
    threshold is one column of the block (N * 16 bytes).  Measured as
    the *peak* traced memory during one steady-state call: a temporary
    that is freed before the call returns leaves no snapshot footprint,
    so a snapshot diff would miss exactly the allocations this test
    exists to forbid.
    """

    def _measure(self, fn):
        fn()
        fn()  # warm-ups: lazy imports, caches, plan first-touch
        tracemalloc.start()
        fn()
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak - current

    def test_block_step(self, ti_small, rng, backend):
        m, _ = ti_small
        scale = SpectralScale.from_bounds(*m.gershgorin_bounds())
        bk = get_backend(backend)
        r = 8
        V = _block(rng, m.n_rows, r)
        W = _block(rng, m.n_rows, r)
        plan = bk.plan(m, r)
        grew = self._measure(
            lambda: bk.aug_spmmv_step(m, V, W, scale.a, scale.b, plan=plan)
        )
        assert grew < m.n_rows * 16, f"{grew} bytes allocated in the loop"

    def test_single_vector_steps(self, ti_small, rng, backend):
        m, _ = ti_small
        scale = SpectralScale.from_bounds(*m.gershgorin_bounds())
        bk = get_backend(backend)
        v = _block(rng, m.n_rows, 1)[:, 0].copy()
        w = _block(rng, m.n_rows, 1)[:, 0].copy()
        plan = bk.plan(m, 1)

        def steps():
            bk.aug_spmv_step(m, v, w, scale.a, scale.b, plan=plan)
            bk.naive_step(m, v, w, scale.a, scale.b, plan=plan)

        grew = self._measure(steps)
        assert grew < m.n_rows * 16, f"{grew} bytes allocated in the loop"
