"""MatrixMarket I/O round trips."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.util.errors import FormatError


class TestRoundTrip:
    def test_complex_general(self, small_hermitian, tmp_path):
        m, dense = small_hermitian
        p = tmp_path / "m.mtx"
        write_matrix_market(m, p)
        back = read_matrix_market(p)
        assert np.allclose(back.to_dense(), dense)

    def test_hermitian_compact(self, ti_small, tmp_path):
        h, _ = ti_small
        p = tmp_path / "h.mtx"
        write_matrix_market(h, p, symmetry="hermitian")
        back = read_matrix_market(p)
        assert np.allclose(back.to_dense(), h.to_dense())
        # compact file stores roughly half the entries
        n_lines = sum(1 for _ in p.open()) - 2
        assert n_lines < 0.6 * h.nnz

    def test_real_matrix_field(self, tmp_path):
        m = CSRMatrix.from_coo([0, 1], [1, 0], [2.0, 2.0], (2, 2))
        p = tmp_path / "r.mtx"
        write_matrix_market(m, p)
        assert "real" in p.read_text().splitlines()[0]
        back = read_matrix_market(p)
        assert np.allclose(back.to_dense(), m.to_dense())

    def test_symmetric_real(self, tmp_path):
        dense = np.array([[1.0, 2.0], [2.0, 3.0]])
        m = CSRMatrix.from_dense(dense)
        p = tmp_path / "s.mtx"
        write_matrix_market(m, p, symmetry="symmetric")
        assert np.allclose(read_matrix_market(p).to_dense(), dense)

    def test_comment_written(self, tmp_path):
        m = CSRMatrix.identity(2)
        p = tmp_path / "c.mtx"
        write_matrix_market(m, p, comment="hello\nworld")
        text = p.read_text()
        assert "% hello" in text and "% world" in text
        assert np.allclose(read_matrix_market(p).to_dense(), np.eye(2))


class TestReadFormats:
    def test_pattern(self, tmp_path):
        p = tmp_path / "p.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        m = read_matrix_market(p)
        assert np.allclose(m.to_dense(), np.eye(2))

    def test_skew_symmetric(self, tmp_path):
        p = tmp_path / "sk.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        m = read_matrix_market(p)
        d = m.to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "cm.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n\n2 2 1\n1 2 5.0\n"
        )
        m = read_matrix_market(p)
        assert m.to_dense()[0, 1] == 5.0


class TestErrors:
    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(FormatError):
            read_matrix_market(p)

    def test_array_format_rejected(self, tmp_path):
        p = tmp_path / "arr.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(FormatError):
            read_matrix_market(p)

    def test_truncated(self, tmp_path):
        p = tmp_path / "t.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        with pytest.raises(FormatError):
            read_matrix_market(p)

    def test_hermitian_write_needs_square(self, tmp_path):
        m = CSRMatrix.from_coo([0], [2], [1.0], (2, 3))
        with pytest.raises(FormatError):
            write_matrix_market(m, tmp_path / "x.mtx", symmetry="hermitian")

    def test_unknown_symmetry_write(self, tmp_path):
        with pytest.raises(ValueError):
            write_matrix_market(
                CSRMatrix.identity(2), tmp_path / "x.mtx", symmetry="magic"
            )
