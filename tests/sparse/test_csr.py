"""CSRMatrix construction, validation, and derived operations."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, segment_sum
from repro.util.errors import FormatError, ShapeError


class TestSegmentSum:
    def test_basic(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        indptr = np.array([0, 2, 4])
        assert np.allclose(segment_sum(v, indptr), [3.0, 7.0])

    def test_empty_segments(self):
        v = np.array([1.0, 2.0, 3.0])
        indptr = np.array([0, 0, 2, 2, 3, 3])
        assert np.allclose(segment_sum(v, indptr), [0, 3, 0, 3, 0])

    def test_all_empty(self):
        out = segment_sum(np.empty(0), np.array([0, 0, 0]))
        assert np.allclose(out, [0, 0])

    def test_2d_values(self):
        v = np.arange(8.0).reshape(4, 2)
        indptr = np.array([0, 1, 4])
        out = segment_sum(v, indptr)
        assert out.shape == (2, 2)
        assert np.allclose(out[0], [0, 1])
        assert np.allclose(out[1], v[1:].sum(axis=0))

    def test_trailing_extra_values_ignored(self):
        v = np.array([1.0, 2.0, 99.0])
        out = segment_sum(v, np.array([0, 2]))
        assert np.allclose(out, [3.0])

    def test_matches_python_reference(self, rng):
        lengths = rng.integers(0, 5, size=20)
        indptr = np.concatenate([[0], np.cumsum(lengths)])
        v = rng.normal(size=indptr[-1])
        ref = [v[indptr[i]:indptr[i + 1]].sum() for i in range(20)]
        assert np.allclose(segment_sum(v, indptr), ref)


class TestFromCoo:
    def test_duplicates_summed(self):
        m = CSRMatrix.from_coo([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0], (2, 2))
        assert m.nnz == 2
        d = m.to_dense()
        assert d[0, 1] == 3.0
        assert d[1, 0] == 5.0

    def test_duplicates_kept_when_disabled(self):
        m = CSRMatrix.from_coo(
            [0, 0], [1, 1], [1.0, 2.0], (2, 2), sum_duplicates=False
        )
        assert m.nnz == 2

    def test_drop_zeros(self):
        m = CSRMatrix.from_coo(
            [0, 1], [0, 1], [0.0, 2.0], (2, 2), drop_zeros=True
        )
        assert m.nnz == 1

    def test_sorted_within_rows(self, rng):
        n = 15
        rows = rng.integers(0, n, 60)
        cols = rng.integers(0, n, 60)
        vals = rng.normal(size=60)
        m = CSRMatrix.from_coo(rows, cols, vals, (n, n))
        for i in range(n):
            seg = m.indices[m.indptr[i]:m.indptr[i + 1]]
            assert np.all(np.diff(seg) > 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix.from_coo([2], [0], [1.0], (2, 2))
        with pytest.raises(FormatError):
            CSRMatrix.from_coo([0], [5], [1.0], (2, 2))
        with pytest.raises(FormatError):
            CSRMatrix.from_coo([-1], [0], [1.0], (2, 2))

    def test_mismatched_triplets_rejected(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo([0, 1], [0], [1.0], (2, 2))

    def test_empty_matrix(self):
        m = CSRMatrix.from_coo([], [], [], (3, 3))
        assert m.nnz == 0
        assert np.allclose(m.to_dense(), 0)


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(FormatError, match="indptr"):
            CSRMatrix(np.array([1, 2]), np.array([0]), np.array([1.0]), (1, 1))

    def test_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                np.array([0, 2, 1]),
                np.array([0, 0]),
                np.array([1.0, 1.0]),
                (2, 2),
            )

    def test_indptr_tail_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (1, 1))

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix(np.array([0, 1]), np.array([3]), np.array([1.0]), (1, 2))

    def test_dense_requires_2d(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_dense(np.zeros(4))


class TestDerivedOps:
    def test_dense_roundtrip(self, small_hermitian):
        m, dense = small_hermitian
        assert np.allclose(m.to_dense(), dense)

    def test_identity(self):
        assert np.allclose(CSRMatrix.identity(4).to_dense(), np.eye(4))

    def test_diagonal(self, small_hermitian):
        m, dense = small_hermitian
        assert np.allclose(m.diagonal(), np.diag(dense))

    def test_diagonal_rectangular(self):
        m = CSRMatrix.from_coo([0, 1], [0, 1], [2.0, 3.0], (2, 5))
        assert np.allclose(m.diagonal(), [2.0, 3.0])

    def test_transpose_conj(self, small_hermitian):
        m, dense = small_hermitian
        assert np.allclose(m.transpose_conj().to_dense(), dense.conj().T)

    def test_is_hermitian(self, small_hermitian):
        m, _ = small_hermitian
        assert m.is_hermitian()

    def test_non_hermitian_detected(self):
        m = CSRMatrix.from_coo([0], [1], [1.0 + 1j], (2, 2))
        assert not m.is_hermitian()

    def test_rectangular_not_hermitian(self):
        m = CSRMatrix.from_coo([0], [0], [1.0], (2, 3))
        assert not m.is_hermitian()

    def test_scale_shift(self, small_hermitian):
        m, dense = small_hermitian
        s = m.scale_shift(2.0, 0.5)
        assert np.allclose(s.to_dense(), 2.0 * (dense - 0.5 * np.eye(40)))

    def test_scale_shift_square_only(self):
        m = CSRMatrix.from_coo([0], [0], [1.0], (2, 3))
        with pytest.raises(ShapeError):
            m.scale_shift(1.0, 0.0)

    def test_gershgorin_encloses_spectrum(self, small_hermitian):
        m, dense = small_hermitian
        lam = np.linalg.eigvalsh(dense)
        lo, hi = m.gershgorin_bounds()
        assert lo <= lam.min() and lam.max() <= hi

    def test_extract_rows(self, small_hermitian):
        m, dense = small_hermitian
        sub = m.extract_rows(10, 25)
        assert sub.shape == (15, 40)
        assert np.allclose(sub.to_dense(), dense[10:25])

    def test_extract_rows_bounds_checked(self, small_hermitian):
        m, _ = small_hermitian
        with pytest.raises(ShapeError):
            m.extract_rows(-1, 10)
        with pytest.raises(ShapeError):
            m.extract_rows(5, 41)

    def test_remap_columns(self):
        m = CSRMatrix.from_coo([0, 1], [3, 1], [1.0, 2.0], (2, 4))
        mapping = np.array([-1, 0, -1, 1])
        r = m.remap_columns(mapping, 2)
        d = r.to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 2.0

    def test_remap_unmapped_column_rejected(self):
        m = CSRMatrix.from_coo([0], [0], [1.0], (1, 2))
        with pytest.raises(FormatError):
            m.remap_columns(np.array([-1, 0]), 1)

    def test_bandwidth(self):
        m = CSRMatrix.from_coo([0, 3], [3, 0], [1.0, 1.0], (4, 4))
        assert m.bandwidth() == 3
        assert CSRMatrix.from_coo([], [], [], (2, 2)).bandwidth() == 0

    def test_nnzr_and_memory(self, ti_periodic):
        h, _ = ti_periodic
        assert h.nnzr == pytest.approx(13.0)
        assert h.memory_bytes() == h.nnz * 20

    def test_repr(self, small_hermitian):
        m, _ = small_hermitian
        assert "CSRMatrix" in repr(m)
