"""BLAS-1 kernels: numerics and paper-Table-I accounting."""

import numpy as np
import pytest

from repro.sparse.blas1 import axpy, dot, nrm2_sq, scal
from repro.util.constants import F_ADD, F_MUL, S_D
from repro.util.counters import PerfCounters


@pytest.fixture
def vectors(rng):
    n = 100
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    y = rng.normal(size=n) + 1j * rng.normal(size=n)
    return x, y


class TestNumerics:
    def test_axpy_in_place(self, vectors):
        x, y = vectors
        ref = y + (2 - 1j) * x
        out = axpy(y, 2 - 1j, x)
        assert out is y
        assert np.allclose(y, ref)

    def test_scal_in_place(self, vectors):
        x, _ = vectors
        ref = -3.0 * x
        out = scal(-3.0, x)
        assert out is x
        assert np.allclose(x, ref)

    def test_dot_conjugates_first_argument(self, vectors):
        x, y = vectors
        assert dot(x, y) == pytest.approx(np.sum(np.conj(x) * y))

    def test_dot_hermitian_symmetry(self, vectors):
        x, y = vectors
        assert dot(x, y) == pytest.approx(np.conj(dot(y, x)))

    def test_nrm2_sq(self, vectors):
        x, _ = vectors
        assert nrm2_sq(x) == pytest.approx(np.linalg.norm(x) ** 2)

    def test_nrm2_sq_real_nonnegative(self, vectors):
        x, _ = vectors
        v = nrm2_sq(x)
        assert isinstance(v, float) and v >= 0


class TestAccounting:
    """Exactly the per-call rows of paper Table I."""

    N = 64

    def _vec(self):
        return np.ones(self.N, dtype=complex)

    def test_axpy(self):
        c = PerfCounters()
        axpy(self._vec(), 1.0, self._vec(), counters=c)
        assert c.bytes_total == 3 * self.N * S_D
        assert c.flops == self.N * (F_ADD + F_MUL)

    def test_scal(self):
        c = PerfCounters()
        scal(2.0, self._vec(), counters=c)
        assert c.bytes_total == 2 * self.N * S_D
        assert c.flops == self.N * F_MUL

    def test_dot(self):
        c = PerfCounters()
        dot(self._vec(), self._vec(), counters=c)
        assert c.bytes_total == 2 * self.N * S_D
        assert c.flops == self.N * (F_ADD + F_MUL)

    def test_nrm2(self):
        c = PerfCounters()
        nrm2_sq(self._vec(), counters=c)
        assert c.bytes_total == self.N * S_D
        assert c.flops == self.N * (F_ADD // 2 + F_MUL // 2)
