"""Thread-count invariance of the threaded (_mt) native kernels.

The threaded kernels partition rows into a *fixed* block grid that does
not depend on the thread count, accumulate one Kahan eta partial per
block, and combine the partials sequentially in block order — so fp64
moments are bitwise identical at every thread count.  These tests pin
that contract alone and composed with the subsystems that rely on it:
checkpoint resume (a resumed run may restart with a different thread
count) and serve coalescing (a threaded batch must stay invisible).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import checkpointed_eta
from repro.core.moments import compute_eta, eta_to_moments
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.physics import build_topological_insulator
from repro.sparse.backend.native import native_available
from repro.sparse.sell import SellMatrix

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

THREAD_COUNTS = (1, 2, 4)
M = 32
R = 3


@pytest.fixture(scope="module")
def ti():
    h, _ = build_topological_insulator(6, 6, 4)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    block = make_block_vector(h.n_rows, R, seed=11)
    return h, scale, block


def _operator(h, fmt: str):
    if fmt == "sell":
        return SellMatrix(h, chunk_height=8, sigma=32)
    return h


@needs_native
@pytest.mark.parametrize("fmt", ["csr", "sell"])
@pytest.mark.parametrize("engine", ["aug_spmv", "aug_spmmv"])
def test_fp64_moments_bitwise_across_thread_counts(ti, fmt, engine):
    """The tentpole invariant: eta(threads=t) is one bit pattern for all t."""
    h, scale, block = ti
    A = _operator(h, fmt)
    etas = [
        compute_eta(A, scale, M, block, engine, backend="native", threads=t)
        for t in THREAD_COUNTS
    ]
    for t, eta in zip(THREAD_COUNTS[1:], etas[1:]):
        np.testing.assert_array_equal(
            etas[0], eta, err_msg=f"{fmt}/{engine}: threads=1 vs {t}"
        )


@needs_native
@pytest.mark.parametrize("fmt", ["csr", "sell"])
def test_threaded_recurrence_matches_sequential_kernels(ti, fmt):
    """The W update is row-local, so the recurrence *trajectory* of the
    threaded path is bitwise the sequential kernels' — only the eta
    reduction differs in scheme (block Kahan), never across counts."""
    h, scale, block = ti
    A = _operator(h, fmt)
    seq = compute_eta(A, scale, M, block, backend="native", threads=None)
    par = compute_eta(A, scale, M, block, backend="native", threads=2)
    # same trajectory => identical to fp64 reduction reordering only
    np.testing.assert_allclose(par, seq, rtol=1e-13, atol=1e-13)


@needs_native
def test_checkpoint_resume_across_thread_counts(ti, tmp_path):
    """Interrupt at threads=2, resume at threads=4: bitwise equal to an
    uninterrupted threads=1 run (composition with checkpointing)."""
    from repro.resil.faults import FaultInjector, FaultPlan, FaultSpec
    from repro.util.errors import FaultInjected

    h, scale, block = ti
    ref = checkpointed_eta(h, scale, M, block, backend="native", threads=1)

    path = tmp_path / "ck.npz"
    plan = FaultPlan(specs=(FaultSpec("raise", rank=0, m=9),))
    inj = FaultInjector(plan, rank=0, attempt=1, in_process=True)
    with pytest.raises(FaultInjected):
        checkpointed_eta(
            h, scale, M, block, backend="native", threads=2,
            checkpoint_every=4, checkpoint_path=path, fault=inj,
        )
    resumed = checkpointed_eta(
        h, scale, M, block, backend="native", threads=4,
        checkpoint_every=4, checkpoint_path=path, resume_from=path,
    )
    np.testing.assert_array_equal(ref, resumed)


@needs_native
def test_serve_coalescing_invisible_at_any_thread_count():
    """A threaded coalesced batch returns the exact bytes a solo solve
    at a *different* thread count returns (composition with serving)."""
    from repro.serve import HamiltonianSpec, KPMServer, Request

    spec = HamiltonianSpec(
        "topological_insulator", {"nx": 6, "ny": 6, "nz": 4}
    )
    wide = KPMServer(max_width=8, backend="native", threads=2)
    tickets = [
        wide.submit(Request(spec, n_moments=M, n_vectors=1, seed=s))
        for s in range(4)
    ]
    assert wide.step() == 1  # one coalesced batch of width 4
    for s, t in enumerate(tickets):
        solo = KPMServer(max_width=1, backend="native", threads=4)
        t_ref = solo.submit(Request(spec, n_moments=M, n_vectors=1, seed=s))
        solo.step()
        np.testing.assert_array_equal(
            t.result().moments, t_ref.result().moments
        )


@needs_native
def test_distributed_threads_match_serial(ti):
    """sim-world ranks with per-rank threads: moments are bitwise
    invariant across per-rank thread counts, plain and overlapped."""
    from repro.dist.comm import SimWorld
    from repro.dist.kpm_parallel import distributed_eta
    from repro.dist.partition import RowPartition

    h, scale, block = ti
    part = RowPartition.equal(h.n_rows, 2, align=4)
    # thread-count invariance holds *within* each schedule; the overlap
    # split regroups the eta reduction (interior + boundary) by design
    for ov in (False, True):
        etas = [
            distributed_eta(
                h, part, scale, M, block, SimWorld(2), backend="native",
                overlap=ov, threads=t,
            )
            for t in THREAD_COUNTS
        ]
        for eta in etas[1:]:
            np.testing.assert_array_equal(
                etas[0], eta, err_msg=f"overlap={ov}"
            )


@needs_native
def test_numpy_backend_ignores_threads(ti):
    """The knob is accept-and-ignore on the NumPy backend."""
    h, scale, block = ti
    a = compute_eta(h, scale, M, block, backend="numpy", threads=None)
    b = compute_eta(h, scale, M, block, backend="numpy", threads=4)
    np.testing.assert_array_equal(a, b)


@needs_native
def test_solver_threads_knob(ti):
    """KPMSolver(threads=...) reaches the kernels and keeps moments
    bitwise across counts (including 'auto')."""
    from repro.core.solver import KPMSolver

    h, scale, _ = ti
    mus = [
        KPMSolver(h, n_moments=M, n_vectors=2, scale=scale, seed=5,
                  backend="native", threads=t).moments()
        for t in (1, 4, "auto")
    ]
    np.testing.assert_array_equal(mus[0], mus[1])
    np.testing.assert_array_equal(mus[0], mus[2])


@needs_native
def test_moments_survive_engine_mix(ti):
    """eta_to_moments of threaded runs equals the threads=1 conversion —
    a guard that nothing downstream depends on the thread count."""
    h, scale, block = ti
    mus = [
        eta_to_moments(
            compute_eta(h, scale, M, block, backend="native", threads=t)
        )
        for t in THREAD_COUNTS
    ]
    for mu in mus[1:]:
        np.testing.assert_array_equal(mus[0], mu)
