"""SELL-C-sigma storage: layout, padding, sorting, round trips."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.util.errors import FormatError


def ragged_matrix():
    """Rows with very different lengths to exercise sorting/padding."""
    rows, cols, vals = [], [], []
    n = 20
    for i in range(n):
        k = (i * 7) % 9 + 1
        for j in range(k):
            rows.append(i)
            cols.append((i + j * 3) % n)
            vals.append(float(i + 1) + 1j * j)
    return CSRMatrix.from_coo(rows, cols, vals, (n, n))


class TestConstruction:
    def test_roundtrip_dense(self, small_hermitian):
        m, dense = small_hermitian
        s = SellMatrix(m, chunk_height=8, sigma=16)
        assert np.allclose(s.to_dense(), dense)

    @pytest.mark.parametrize("c,sigma", [(1, 1), (2, 4), (4, 4), (8, 1), (32, 32)])
    def test_roundtrip_parametrized(self, c, sigma):
        m = ragged_matrix()
        s = SellMatrix(m, chunk_height=c, sigma=sigma)
        assert np.allclose(s.to_dense(), m.to_dense())

    def test_invalid_sigma_rejected(self):
        with pytest.raises(FormatError):
            SellMatrix(ragged_matrix(), chunk_height=4, sigma=6)

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            SellMatrix(ragged_matrix(), chunk_height=0)

    def test_nonsquare(self):
        m = CSRMatrix.from_coo([0, 2], [1, 4], [1.0, 2.0], (3, 5))
        s = SellMatrix(m, chunk_height=2)
        assert np.allclose(s.to_dense(), m.to_dense())


class TestPadding:
    def test_beta_at_most_one(self):
        s = SellMatrix(ragged_matrix(), chunk_height=4, sigma=1)
        assert 0 < s.beta <= 1.0

    def test_sorting_improves_beta(self):
        m = ragged_matrix()
        unsorted = SellMatrix(m, chunk_height=4, sigma=1)
        fully = SellMatrix(m, chunk_height=4, sigma=20)
        assert fully.beta >= unsorted.beta

    def test_sell1_is_crs_no_padding(self):
        s = SellMatrix(ragged_matrix(), chunk_height=1, sigma=1)
        assert s.beta == pytest.approx(1.0)
        assert s.stored_slots == s.nnz

    def test_uniform_rows_no_padding(self, ti_periodic):
        h, _ = ti_periodic
        s = SellMatrix(h, chunk_height=32, sigma=1)
        assert s.beta == pytest.approx(1.0)

    def test_memory_bytes_counts_padding(self):
        s = SellMatrix(ragged_matrix(), chunk_height=4, sigma=1)
        assert s.memory_bytes() == s.stored_slots * 20
        assert s.memory_bytes() >= s.nnz * 20


class TestLayout:
    def test_chunk_count(self):
        s = SellMatrix(ragged_matrix(), chunk_height=8)
        assert s.n_chunks == -(-20 // 8)

    def test_chunk_len_is_chunk_max(self):
        m = ragged_matrix()
        s = SellMatrix(m, chunk_height=4, sigma=1)
        lengths = np.zeros(s.n_chunks * 4, dtype=int)
        lengths[:20] = m.nnz_per_row
        for ci in range(s.n_chunks):
            assert s.chunk_len[ci] == lengths[4 * ci : 4 * ci + 4].max()

    def test_perm_is_permutation(self):
        s = SellMatrix(ragged_matrix(), chunk_height=4, sigma=8)
        assert sorted(s.perm.tolist()) == list(range(len(s.perm)))

    def test_sigma_sorting_descending_within_scope(self):
        m = ragged_matrix()
        s = SellMatrix(m, chunk_height=4, sigma=8)
        lengths = np.zeros(s.n_chunks * 4, dtype=int)
        lengths[:20] = m.nnz_per_row
        sorted_lengths = lengths[s.perm]
        for lo in range(0, len(sorted_lengths), 8):
            scope = sorted_lengths[lo : lo + 8]
            assert np.all(np.diff(scope) <= 0)

    def test_repr_shows_beta(self):
        s = SellMatrix(ragged_matrix(), chunk_height=4)
        assert "beta" in repr(s)

    def test_nnzr_preserved(self):
        m = ragged_matrix()
        s = SellMatrix(m, chunk_height=4)
        assert s.nnzr == pytest.approx(m.nnzr)
