"""Determinism of the vectorized (_simd) native kernels.

The SIMD kernels vectorize the augmented/split kernels with a *fixed
lane-blocked reduction*: every fp64 dot accumulates in the same 8-lane
blocks whether the scalar or the AVX2/FMA build executes it, so fp64
moments are bitwise identical across ``simd='on'`` and ``simd='off'``
— at every block width R, every thread count, every format, and
composed with every subsystem that relies on kernel determinism
(checkpoint resume, the distributed engines, elastic grid mode, serve
coalescing).  These tests pin that contract, the forced-scalar drill
(``REPRO_SIMD_DISABLE``), the clean ``simd='on'`` fallback, and the
half-float converter parity (the scalar software converter must agree
with numpy/F16C on every finite pattern, subnormals included).

On a host without AVX2 the on/off comparisons degenerate to
scalar-vs-scalar — still a valid (if trivial) run of the contract — so
nothing here is gated on the CPU, only on the native backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import checkpointed_eta
from repro.core.moments import compute_eta
from repro.core.scaling import SpectralScale
from repro.core.stochastic import ldos_moments, make_block_vector
from repro.physics import build_topological_insulator
from repro.sparse.backend.native import (
    native_available,
    simd_available,
    simd_compiled_mask,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.util.precision import FP16V

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

M = 16


@pytest.fixture(scope="module")
def ti():
    h, _ = build_topological_insulator(6, 6, 4)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    blocks = {r: make_block_vector(h.n_rows, r, seed=11) for r in (1, 8, 32)}
    return h, scale, blocks


def _operator(h, fmt: str):
    if fmt == "sell":
        return SellMatrix(h, chunk_height=8, sigma=32)
    return h


# ---------------------------------------------------------------------
# the tentpole invariant: bitwise on/off, all knobs
# ---------------------------------------------------------------------

@needs_native
@pytest.mark.parametrize("fmt", ["csr", "sell"])
@pytest.mark.parametrize("r", [1, 8, 32])
@pytest.mark.parametrize("threads", [None, 1, 2, 4])
def test_fp64_bitwise_on_off(ti, fmt, r, threads):
    """eta(simd='on') and eta(simd='off') are one bit pattern."""
    h, scale, blocks = ti
    A = _operator(h, fmt)
    on = compute_eta(A, scale, M, blocks[r], "aug_spmmv", backend="native",
                     threads=threads, simd="on")
    off = compute_eta(A, scale, M, blocks[r], "aug_spmmv", backend="native",
                      threads=threads, simd="off")
    np.testing.assert_array_equal(on, off)


@needs_native
@pytest.mark.parametrize("fmt", ["csr", "sell"])
@pytest.mark.parametrize("engine", ["naive", "aug_spmv"])
def test_fp64_bitwise_on_off_single_vector_engines(ti, fmt, engine):
    h, scale, blocks = ti
    A = _operator(h, fmt)
    blk = np.ascontiguousarray(blocks[8][:, :3])
    on = compute_eta(A, scale, M, blk, engine, backend="native", simd="on")
    off = compute_eta(A, scale, M, blk, engine, backend="native", simd="off")
    np.testing.assert_array_equal(on, off)


@needs_native
@pytest.mark.parametrize("precision", ["fp32", "fp16v"])
def test_narrow_profiles_bitwise_on_off(ti, precision):
    """Narrow storage rounds identically too: same DAG, same lanes."""
    h, scale, blocks = ti
    for A in (h, _operator(h, "sell")):
        on = compute_eta(A, scale, M, blocks[8], "aug_spmmv",
                         backend="native", precision=precision, simd="on")
        off = compute_eta(A, scale, M, blocks[8], "aug_spmmv",
                          backend="native", precision=precision, simd="off")
        np.testing.assert_array_equal(on, off)


@needs_native
def test_ldos_bitwise_on_off(ti):
    h, scale, blocks = ti
    rows = np.array([0, 17, 101])
    on = ldos_moments(h, scale, M, blocks[8], rows, backend="native",
                      simd="on")
    off = ldos_moments(h, scale, M, blocks[8], rows, backend="native",
                       simd="off")
    np.testing.assert_array_equal(on, off)


@needs_native
def test_auto_equals_both(ti):
    """'auto' (and the None default) picks one of the two bit patterns."""
    h, scale, blocks = ti
    auto = compute_eta(h, scale, M, blocks[8], "aug_spmmv",
                       backend="native", simd="auto")
    default = compute_eta(h, scale, M, blocks[8], "aug_spmmv",
                          backend="native")
    off = compute_eta(h, scale, M, blocks[8], "aug_spmmv",
                      backend="native", simd="off")
    np.testing.assert_array_equal(auto, off)
    np.testing.assert_array_equal(default, off)


@needs_native
def test_invalid_simd_rejected(ti):
    from repro.util.errors import BackendError

    h, scale, blocks = ti
    with pytest.raises(BackendError, match="simd"):
        compute_eta(h, scale, M, blocks[1], "aug_spmmv", backend="native",
                    simd="fast")


# ---------------------------------------------------------------------
# forced-scalar drill and the 'on' fallback
# ---------------------------------------------------------------------

@needs_native
def test_forced_scalar_drill(ti, monkeypatch):
    """REPRO_SIMD_DISABLE flips every path to scalar, bitwise unchanged."""
    h, scale, blocks = ti
    want = compute_eta(h, scale, M, blocks[8], "aug_spmmv",
                       backend="native", simd="off")
    monkeypatch.setenv("REPRO_SIMD_DISABLE", "1")
    assert not simd_available()
    for simd in ("auto", "on", "off"):
        got = compute_eta(h, scale, M, blocks[8], "aug_spmmv",
                          backend="native", simd=simd)
        np.testing.assert_array_equal(got, want)


@needs_native
def test_on_fallback_counts(ti, monkeypatch):
    """simd='on' without the kernels falls back cleanly and is counted."""
    from repro.obs import GLOBAL_METRICS

    h, scale, blocks = ti
    monkeypatch.setenv("REPRO_SIMD_DISABLE", "1")
    before = GLOBAL_METRICS.counters.get("backend.native.simd_fallbacks", 0)
    compute_eta(h, scale, M, blocks[1], "aug_spmmv", backend="native",
                simd="on")
    after = GLOBAL_METRICS.counters.get("backend.native.simd_fallbacks", 0)
    assert after > before


# ---------------------------------------------------------------------
# composition with the determinism-dependent subsystems
# ---------------------------------------------------------------------

@needs_native
def test_checkpoint_resume_across_simd_settings(ti, tmp_path):
    """A run checkpointed under simd='on' resumes bit-exactly under 'off'."""
    h, scale, blocks = ti
    ck = tmp_path / "state.npz"
    full = checkpointed_eta(h, scale, M, blocks[8], simd="off",
                            backend="native")
    checkpointed_eta(h, scale, M, blocks[8], checkpoint_every=3,
                     checkpoint_path=ck, simd="on", backend="native")
    resumed = checkpointed_eta(h, scale, M, blocks[8], resume_from=ck,
                               simd="off", backend="native")
    np.testing.assert_array_equal(resumed, full)


@needs_native
@pytest.mark.parametrize("world_kind", ["sim", "mp"])
def test_distributed_bitwise_on_off(ti, world_kind):
    from repro.dist.comm import SimWorld
    from repro.dist.kpm_parallel import distributed_eta
    from repro.dist.mp import MpWorld
    from repro.dist.partition import RowPartition

    h, scale, blocks = ti
    part = RowPartition.equal(h.n_rows, 2, align=4)

    def run(simd):
        world = MpWorld(2) if world_kind == "mp" else SimWorld(2)
        return distributed_eta(h, part, scale, M, blocks[8], world,
                               backend="native", simd=simd)

    np.testing.assert_array_equal(run("on"), run("off"))


@needs_native
def test_elastic_grid_bitwise_on_off(ti):
    """Grid-eta mode and the SIMD knob compose: both bitwise-invisible."""
    from repro.dist.comm import SimWorld
    from repro.dist.kpm_parallel import distributed_eta
    from repro.dist.partition import RowPartition

    h, scale, blocks = ti
    grid = 16

    def run(simd, ranks):
        part = RowPartition.equal(h.n_rows, ranks, align=grid)
        return distributed_eta(h, part, scale, M, blocks[8],
                               SimWorld(ranks), backend="native",
                               simd=simd, eta_grid=grid)

    base = run("off", 2)
    np.testing.assert_array_equal(run("on", 2), base)
    # the full elastic promise: the knob AND the partition are invisible
    np.testing.assert_array_equal(run("on", 3), base)


@needs_native
def test_serve_coalescing_invisible_under_simd():
    """A width-k batch on SIMD kernels returns solo-scalar bit patterns."""
    from repro.serve import HamiltonianSpec, KPMServer, Request

    spec = HamiltonianSpec("topological_insulator",
                           {"nx": 6, "ny": 6, "nz": 4})

    def moments(seeds, width, simd):
        srv = KPMServer(max_width=width, backend="native", simd=simd)
        tickets = [
            srv.submit(Request(spec, n_moments=M, n_vectors=1, seed=s))
            for s in seeds
        ]
        srv.step()
        while srv.step():
            pass
        return [t.result().moments for t in tickets]

    batch = moments([0, 1, 2, 3], 4, "on")
    for mu, s in zip(batch, [0, 1, 2, 3]):
        (solo,) = moments([s], 1, "off")
        np.testing.assert_array_equal(mu, solo)


# ---------------------------------------------------------------------
# half-float converter parity (the subnormal regression trap)
# ---------------------------------------------------------------------

@needs_native
@pytest.mark.parametrize("scalar_only", [True, False],
                         ids=["scalar", "vector"])
def test_half_converters_match_numpy_on_all_finite_patterns(
        monkeypatch, scalar_only):
    """Every finite f16 pattern round-trips the native kernels exactly.

    Streams all 65536 bit patterns (as re/im pairs) through an identity
    SpMV in half storage under both the scalar software converter
    (forced via ``REPRO_SIMD_DISABLE``) and the F16C build, and compares
    with numpy's own float16 -> float32 conversion.  This is the test
    that catches the scalar converter's historical subnormal off-by-one
    (exponent 127-15-shift instead of 127-14-shift halved every
    subnormal value).
    """
    from repro.sparse.backend import get_backend

    if scalar_only:
        monkeypatch.setenv("REPRO_SIMD_DISABLE", "1")
    patterns = np.arange(65536, dtype=np.uint32).astype(np.uint16)
    half = patterns.view(np.float16)
    finite = np.isfinite(half)
    n = 32768  # 65536 values = 32768 (re, im) pairs
    v = np.ascontiguousarray(half.reshape(n, 2))
    eye = CSRMatrix.identity(n)
    out = get_backend("native").spmv(eye, v)
    got = FP16V.decode(out)
    got = np.stack([got.real, got.imag], axis=-1).reshape(-1)
    ref = half.astype(np.float32)
    np.testing.assert_array_equal(
        got[finite], ref[finite],
        err_msg="half converter diverges from numpy "
                f"(scalar_only={scalar_only})",
    )


@needs_native
def test_simd_compiled_mask_reports_isa():
    """The mask is stable and consistent with the availability API."""
    mask = simd_compiled_mask()
    assert mask == simd_compiled_mask()  # memoized / deterministic
    if not (mask & 1):
        assert not simd_available()
