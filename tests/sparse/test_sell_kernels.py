"""Layout-faithful SELL chunk kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.sell_kernels import (
    sell_spmmv_chunked,
    sell_spmv_chunked,
    validate_layout,
)
from repro.util.counters import PerfCounters
from repro.util.errors import ShapeError


@pytest.fixture
def sell(small_hermitian):
    m, dense = small_hermitian
    return SellMatrix(m, chunk_height=8, sigma=16), dense


class TestChunkedKernels:
    def test_spmv_matches_dense(self, sell, rng):
        s, dense = sell
        x = rng.normal(size=40) + 1j * rng.normal(size=40)
        assert np.allclose(sell_spmv_chunked(s, x), dense @ x)

    @pytest.mark.parametrize("r", [1, 3, 8])
    def test_spmmv_matches_dense(self, sell, rng, r):
        s, dense = sell
        x = np.ascontiguousarray(
            rng.normal(size=(40, r)) + 1j * rng.normal(size=(40, r))
        )
        assert np.allclose(sell_spmmv_chunked(s, x), dense @ x)

    @pytest.mark.parametrize("c,sigma", [(1, 1), (4, 8), (32, 32)])
    def test_all_chunk_configs(self, small_hermitian, rng, c, sigma):
        m, dense = small_hermitian
        s = SellMatrix(m, chunk_height=c, sigma=sigma)
        x = rng.normal(size=40) + 1j * rng.normal(size=40)
        assert np.allclose(sell_spmv_chunked(s, x), dense @ x)

    def test_counters_charge_padded_slots(self, sell):
        s, _ = sell
        c = PerfCounters()
        sell_spmv_chunked(s, np.zeros(40, dtype=complex), counters=c)
        assert c.flops == s.stored_slots * 8

    def test_matches_fast_path(self, sell, rng):
        from repro.sparse.spmv import spmmv

        s, _ = sell
        x = np.ascontiguousarray(
            rng.normal(size=(40, 4)) + 1j * rng.normal(size=(40, 4))
        )
        assert np.allclose(sell_spmmv_chunked(s, x), spmmv(s, x), atol=1e-10)

    def test_out_shape_checked(self, sell):
        s, _ = sell
        with pytest.raises(ShapeError):
            sell_spmv_chunked(s, np.zeros(40, dtype=complex),
                              out=np.empty(39, dtype=complex))
        with pytest.raises(ShapeError):
            sell_spmmv_chunked(s, np.zeros((40, 2), dtype=complex),
                               out=np.empty((40, 3), dtype=complex))


class TestLayoutValidation:
    def test_valid_layouts_pass(self, sell):
        s, _ = sell
        validate_layout(s)

    def test_ti_layout_passes(self, ti_small):
        h, _ = ti_small
        validate_layout(SellMatrix(h, chunk_height=32, sigma=64))

    def test_corrupted_chunk_ptr_detected(self, sell):
        s, _ = sell
        s.chunk_ptr = s.chunk_ptr.copy()
        s.chunk_ptr[1] += s.chunk_height
        with pytest.raises(ShapeError):
            validate_layout(s)

    def test_corrupted_indices_detected(self, sell):
        s, _ = sell
        s.indices = s.indices.copy()
        s.indices[0] = 1000
        with pytest.raises(ShapeError):
            validate_layout(s)


@given(st.integers(0, 2**31 - 1), st.sampled_from([1, 2, 4, 8]),
       st.sampled_from([1, 2]))
@settings(max_examples=25, deadline=None)
def test_chunked_equals_reference_on_random_matrices(seed, chunk, sig_mult):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    dense = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) * (
        rng.random((n, n)) < 0.3
    )
    m = CSRMatrix.from_dense(dense)
    s = SellMatrix(m, chunk_height=chunk, sigma=chunk * sig_mult)
    validate_layout(s)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    assert np.allclose(sell_spmv_chunked(s, x), dense @ x, atol=1e-9)
