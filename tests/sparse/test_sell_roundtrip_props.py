"""Seeded property-based CSR <-> SELL-C-sigma roundtrip tests.

Hypothesis sweeps random sparsity patterns across chunk heights C,
sorting scopes sigma, empty-row patterns, and value edge cases
(real-only, tiny/huge magnitudes), asserting that

* pack/unpack is lossless: ``SellMatrix(csr).to_csr()`` reproduces the
  CSR matrix bit-exactly (padding introduces no arithmetic),
* the layout invariants hold (perm is a permutation, chunk lengths
  dominate their member rows, beta accounting is consistent),
* ``spmv``/``aug_spmmv_step`` on the SELL operator match the CSR
  operator on the same data.

``derandomize=True`` pins the example stream to the test id — CI runs
are reproducible, no flaky shrink sessions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import aug_spmmv_step
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmv, spmmv

SETTINGS = dict(max_examples=50, deadline=None, derandomize=True)

# value pools for the dtype edge cases: exactly representable reals,
# tiny and huge magnitudes, pure-real and pure-imaginary entries
_EDGE_VALUES = [
    1.0, -1.0, 0.5, -2.0, 1e-150, -1e-150, 1e150, -1e150, 1j, -0.25j,
    (1 + 1j) * 1e-30, 3.0,
]


@st.composite
def square_csr(draw, max_n=28, max_nnz=96, edge_values=False):
    """Random square CSR with explicit control over empty rows."""
    n = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, max_nnz))
    # masking a subset of rows guarantees genuinely empty rows appear
    n_live = draw(st.integers(1, n))
    live_rows = draw(
        st.lists(
            st.integers(0, n - 1), min_size=n_live, max_size=n_live,
            unique=True,
        )
    )
    rows = draw(
        st.lists(st.sampled_from(live_rows), min_size=nnz, max_size=nnz)
    )
    cols = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    if edge_values:
        vals = np.asarray(
            draw(
                st.lists(
                    st.sampled_from(_EDGE_VALUES), min_size=nnz, max_size=nnz
                )
            ),
            dtype=complex,
        )
    else:
        re = draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False), min_size=nnz,
                max_size=nnz,
            )
        )
        im = draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False), min_size=nnz,
                max_size=nnz,
            )
        )
        vals = np.asarray(re) + 1j * np.asarray(im)
    return CSRMatrix.from_coo(rows, cols, vals, (n, n), drop_zeros=True)


sell_params = st.tuples(st.sampled_from([1, 2, 4, 8, 32]),
                        st.sampled_from([1, 2, 4, 8]))


def make_sell(m: CSRMatrix, c: int, sigma_mult: int) -> SellMatrix:
    return SellMatrix(m, chunk_height=c, sigma=1 if sigma_mult == 1
                      else c * sigma_mult)


class TestRoundtrip:
    @given(square_csr(), sell_params)
    @settings(**SETTINGS)
    def test_pack_unpack_bit_exact(self, m, params):
        s = make_sell(m, *params)
        m2 = s.to_csr()
        # no arithmetic happens in pack/unpack: bit-exact, not allclose
        assert np.array_equal(m2.indptr, m.indptr)
        assert np.array_equal(m2.indices, m.indices)
        assert np.array_equal(m2.data, m.data)

    @given(square_csr(edge_values=True), sell_params)
    @settings(**SETTINGS)
    def test_pack_unpack_value_edge_cases(self, m, params):
        s = make_sell(m, *params)
        m2 = s.to_csr()
        assert np.array_equal(m2.indices, m.indices)
        assert np.array_equal(m2.data, m.data)

    @given(square_csr(), sell_params)
    @settings(**SETTINGS)
    def test_double_roundtrip_idempotent(self, m, params):
        s = make_sell(m, *params)
        s2 = make_sell(s.to_csr(), *params)
        assert np.array_equal(s2.data, s.data)
        assert np.array_equal(s2.indices, s.indices)
        assert np.array_equal(s2.perm, s.perm)


class TestLayoutInvariants:
    @given(square_csr(), sell_params)
    @settings(**SETTINGS)
    def test_invariants(self, m, params):
        s = make_sell(m, *params)
        n_padded = s.n_chunks * s.chunk_height
        # perm is a permutation of the padded row range
        assert np.array_equal(np.sort(s.perm), np.arange(n_padded))
        # each chunk is exactly as wide as its longest member row
        lengths = np.zeros(n_padded, dtype=np.int64)
        lengths[:m.n_rows] = m.nnz_per_row
        per_chunk = lengths[s.perm].reshape(s.n_chunks, s.chunk_height)
        assert np.array_equal(s.chunk_len, per_chunk.max(axis=1))
        # accounting: slots dominate nnz, beta consistent
        assert s.stored_slots >= s.nnz
        assert s.stored_slots == int(s.chunk_ptr[-1])
        if s.nnz:
            assert 0 < s.beta <= 1.0
        # sigma sorting never hurts padding vs the unsorted layout
        unsorted = SellMatrix(m, chunk_height=s.chunk_height, sigma=1)
        if s.sigma > 1:
            assert s.stored_slots <= unsorted.stored_slots

    @given(square_csr(max_nnz=0), sell_params)
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_all_rows_empty(self, m, params):
        s = make_sell(m, *params)
        assert s.stored_slots == 0
        assert s.to_csr().nnz == 0


class TestKernelParity:
    @given(square_csr(), sell_params, st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_spmv_parity(self, m, params, seed):
        s = make_sell(m, *params)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=m.n_cols) + 1j * rng.normal(size=m.n_cols)
        assert np.allclose(spmv(s, x), spmv(m, x), atol=1e-9)

    @given(square_csr(), sell_params, st.integers(1, 5),
           st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_spmmv_parity(self, m, params, r, seed):
        s = make_sell(m, *params)
        rng = np.random.default_rng(seed)
        x = np.ascontiguousarray(
            rng.normal(size=(m.n_cols, r)) + 1j * rng.normal(size=(m.n_cols, r))
        )
        assert np.allclose(spmmv(s, x), spmmv(m, x), atol=1e-9)

    @given(square_csr(), sell_params, st.integers(1, 4),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_aug_spmmv_parity(self, m, params, r, seed):
        s = make_sell(m, *params)
        rng = np.random.default_rng(seed)
        n = m.n_rows
        v = np.ascontiguousarray(
            rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
        )
        w_csr = np.ascontiguousarray(
            rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
        )
        w_sell = w_csr.copy()
        a, b = 0.7, -0.3
        ee_c, eo_c = aug_spmmv_step(m, v.copy(), w_csr, a, b)
        ee_s, eo_s = aug_spmmv_step(s, v.copy(), w_sell, a, b)
        assert np.allclose(w_sell, w_csr, atol=1e-9)
        assert np.allclose(ee_s, ee_c, atol=1e-9)
        assert np.allclose(eo_s, eo_c, atol=1e-9)
