"""Property-based tests (hypothesis) for the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix, segment_sum
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmmv, spmv


@st.composite
def coo_matrices(draw, max_n=24, max_nnz=80):
    """Random COO triplets (with duplicates) plus the shape."""
    n_rows = draw(st.integers(1, max_n))
    n_cols = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    re = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=nnz, max_size=nnz
        )
    )
    im = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=nnz, max_size=nnz
        )
    )
    vals = np.asarray(re) + 1j * np.asarray(im)
    return rows, cols, vals, (n_rows, n_cols)


def dense_from_coo(rows, cols, vals, shape):
    d = np.zeros(shape, dtype=complex)
    for r, c, v in zip(rows, cols, vals):
        d[r, c] += v
    return d


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_from_coo_equals_dense_accumulation(coo):
    rows, cols, vals, shape = coo
    m = CSRMatrix.from_coo(rows, cols, vals, shape)
    assert np.allclose(m.to_dense(), dense_from_coo(rows, cols, vals, shape))


@given(coo_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_spmv_matches_dense(coo, seed):
    rows, cols, vals, shape = coo
    m = CSRMatrix.from_coo(rows, cols, vals, shape)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape[1]) + 1j * rng.normal(size=shape[1])
    assert np.allclose(spmv(m, x), m.to_dense() @ x, atol=1e-9)


@given(coo_matrices(), st.integers(1, 6), st.sampled_from([1, 2, 4, 8]),
       st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=40, deadline=None)
def test_sell_roundtrip_and_spmmv(coo, r, chunk, sigma_mult):
    rows, cols, vals, shape = coo
    m = CSRMatrix.from_coo(rows, cols, vals, shape, drop_zeros=True)
    s = SellMatrix(m, chunk_height=chunk, sigma=chunk * sigma_mult)
    assert np.allclose(s.to_dense(), m.to_dense())
    assert 0 < s.beta <= 1.0 or s.nnz == 0
    rng = np.random.default_rng(7)
    x = np.ascontiguousarray(
        rng.normal(size=(shape[1], r)) + 1j * rng.normal(size=(shape[1], r))
    )
    assert np.allclose(spmmv(s, x), m.to_dense() @ x, atol=1e-9)


@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=30),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_segment_sum_matches_loop(lengths, seed):
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    rng = np.random.default_rng(seed)
    v = rng.normal(size=indptr[-1])
    ref = np.array(
        [v[indptr[i] : indptr[i + 1]].sum() for i in range(len(lengths))]
    )
    assert np.allclose(segment_sum(v, indptr), ref)


@given(coo_matrices(max_n=12))
@settings(max_examples=40, deadline=None)
def test_hermitization_is_hermitian(coo):
    """A + A^H must always pass the is_hermitian check."""
    rows, cols, vals, shape = coo
    n = max(shape)
    m = CSRMatrix.from_coo(rows, cols, vals, (n, n) if shape[0] != shape[1] else shape)
    # symmetrize
    h = CSRMatrix.from_dense(m.to_dense() + m.to_dense().conj().T)
    assert h.is_hermitian()


@given(coo_matrices(max_n=12), st.floats(0.1, 5.0), st.floats(-3.0, 3.0))
@settings(max_examples=30, deadline=None)
def test_scale_shift_linearity(coo, a, b):
    rows, cols, vals, shape = coo
    n = max(shape)
    m = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    s = m.scale_shift(a, b)
    assert np.allclose(
        s.to_dense(), a * (m.to_dense() - b * np.eye(n)), atol=1e-9
    )
