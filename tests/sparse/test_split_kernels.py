"""Split (task-mode) kernels: parity, accounting, fallback, allocation.

The two-phase interior/boundary kernels must be drop-in replacements
for the plain fused step *within a backend*: the W update is row-local,
so running the phases in any order produces bitwise the plain result,
and the eta partials sum to the plain dots to reduction-order
tolerance.  Their Table-I charges must sum exactly to the plain charge
(only the per-phase attribution differs), backends without split
kernels must fail with a clear :class:`BackendError`, and the
steady-state iteration must not allocate.
"""

import tracemalloc
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.scaling import SpectralScale
from repro.dist.halo import partition_matrix
from repro.dist.overlap import task_split
from repro.dist.partition import RowPartition
from repro.sparse.backend import (
    KernelBackend,
    SplitKernelPlan,
    available_backends,
    get_backend,
)
from repro.sparse.backend.native import native_available
from repro.sparse.fused import (
    charge_aug_spmmv,
    charge_aug_spmmv_part,
    charge_aug_spmv,
    charge_aug_spmv_part,
)
from repro.sparse.sell import SellMatrix
from repro.util.constants import DTYPE
from repro.util.counters import PerfCounters
from repro.util.errors import BackendError


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    if not available_backends()[request.param]:
        pytest.skip(f"{request.param} backend unavailable on this host")
    return request.param


@pytest.fixture(scope="module")
def dist():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(8, 6, 4)
    part = RowPartition.equal(h.n_rows, 3, align=4)
    return h, partition_matrix(h, part)


def _block(rng, n, r):
    return np.ascontiguousarray(
        (rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))).astype(DTYPE)
    )


def _rank_inputs(h, blk, r, rng):
    """The (xbuf, W) pair a distributed rank feeds the fused kernel."""
    x_global = _block(rng, h.n_rows, r)
    xbuf = np.ascontiguousarray(np.vstack([
        x_global[blk.row_start:blk.row_stop], x_global[blk.halo_global],
    ]))
    w = _block(rng, blk.n_local, r)
    return xbuf, w


class TestBlockParity:
    """Split block step vs the plain fused step of the same backend."""

    @pytest.mark.parametrize("r", [1, 4, 8])
    def test_w_bitwise_eta_close(self, dist, backend, r):
        h, d = dist
        bk = get_backend(backend)
        a, b = 0.37, 0.05
        rng = np.random.default_rng(3)
        for blk in d.blocks:
            xbuf, w0 = _rank_inputs(h, blk, r, rng)
            wp, ws = w0.copy(), w0.copy()
            ee_p, eo_p = bk.aug_spmmv_step(blk.matrix, xbuf, wp, a, b)
            plan = bk.split_plan(blk.matrix, task_split(blk), r)
            ee_s, eo_s = bk.aug_spmmv_split_step(
                blk.matrix, xbuf, ws, a, b, plan
            )
            # the phase update touches each row exactly once with the
            # plain per-row arithmetic, so W is bitwise the plain result
            assert np.array_equal(wp, ws)
            # the dots are split into two partial sums — reduction-order
            # tolerance, not bitwise
            assert np.allclose(ee_s, ee_p, rtol=1e-12, atol=1e-10)
            assert np.allclose(eo_s, eo_p, rtol=1e-12, atol=1e-10)

    def test_degenerate_empty_interior(self, dist, backend):
        """The middle rank of a thin slab has every row on the halo."""
        h, d = dist
        splits = [task_split(blk) for blk in d.blocks]
        assert any(s.n_interior == 0 for s in splits)  # the premise
        bk = get_backend(backend)
        rng = np.random.default_rng(5)
        for blk, s in zip(d.blocks, splits):
            if s.n_interior:
                continue
            xbuf, w0 = _rank_inputs(h, blk, 4, rng)
            wp, ws = w0.copy(), w0.copy()
            bk.aug_spmmv_step(blk.matrix, xbuf, wp, 0.37, 0.05)
            plan = bk.split_plan(blk.matrix, s, 4)
            bk.aug_spmmv_split_step(blk.matrix, xbuf, ws, 0.37, 0.05, plan)
            assert np.array_equal(wp, ws)

    def test_degenerate_all_interior(self, backend):
        """A single rank has no halo: boundary empty, split == plain."""
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 2)
        d = partition_matrix(h, RowPartition((0, h.n_rows)))
        blk = d.blocks[0]
        s = task_split(blk)
        assert s.n_boundary == 0 and s.interior_fraction == 1.0
        bk = get_backend(backend)
        rng = np.random.default_rng(6)
        xbuf, w0 = _rank_inputs(h, blk, 2, rng)
        wp, ws = w0.copy(), w0.copy()
        bk.aug_spmmv_step(blk.matrix, xbuf, wp, 0.37, 0.05)
        plan = bk.split_plan(blk.matrix, s, 2)
        bk.aug_spmmv_split_step(blk.matrix, xbuf, ws, 0.37, 0.05, plan)
        assert np.array_equal(wp, ws)

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    def test_native_matches_numpy(self, dist):
        """Cross-backend parity (tolerance: FMA contraction differs)."""
        h, d = dist
        rng = np.random.default_rng(7)
        for blk in d.blocks:
            xbuf, w0 = _rank_inputs(h, blk, 4, rng)
            results = {}
            for name in ("numpy", "native"):
                bk = get_backend(name)
                w = w0.copy()
                plan = bk.split_plan(blk.matrix, task_split(blk), 4)
                ee, eo = bk.aug_spmmv_split_step(
                    blk.matrix, xbuf, w, 0.37, 0.05, plan
                )
                results[name] = (w, ee, eo)
            wn, een, eon = results["numpy"]
            wc, eec, eoc = results["native"]
            assert np.allclose(wn, wc, atol=1e-10, rtol=1e-10)
            assert np.allclose(een, eec, atol=1e-10, rtol=1e-10)
            assert np.allclose(eon, eoc, atol=1e-10, rtol=1e-10)


class TestVectorParity:
    """The r=1 split step on a square operator with a synthetic split."""

    def test_matches_plain_bitwise(self, backend):
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(6, 5, 4)
        scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
        n = h.n_rows
        row0, row1 = n // 4, 3 * n // 4
        boundary = np.concatenate(
            [np.arange(row0), np.arange(row1, n)]
        ).astype(np.int64)
        split = SimpleNamespace(row0=row0, row1=row1, boundary=boundary)
        bk = get_backend(backend)
        rng = np.random.default_rng(11)
        v = _block(rng, n, 1)[:, 0].copy()
        w0 = _block(rng, n, 1)[:, 0].copy()
        wp, ws = w0.copy(), w0.copy()
        ee_p, eo_p = bk.aug_spmv_step(h, v, wp, scale.a, scale.b)
        plan = bk.split_plan(h, split, 1)
        ee_s, eo_s = bk.aug_spmv_split_step(h, v, ws, scale.a, scale.b, plan)
        assert np.array_equal(wp, ws)
        assert np.isclose(ee_s, ee_p, rtol=1e-12, atol=1e-10)
        assert np.isclose(eo_s, eo_p, rtol=1e-12, atol=1e-10)


class TestAccounting:
    """Phase charges sum exactly to the plain Table-I charge."""

    def test_analytic_exact_sum(self, dist):
        h, d = dist
        for blk in d.blocks:
            s = task_split(blk)
            for r in (1, 8):
                plain, split = PerfCounters(), PerfCounters()
                charge_aug_spmmv(blk.matrix, r, plain)
                charge_aug_spmmv_part(
                    s.n_interior, s.nnz_interior, r, split, "aug_spmmv_int")
                charge_aug_spmmv_part(
                    s.n_boundary, s.nnz_boundary, r, split, "aug_spmmv_bnd")
                assert split.bytes_loaded == plain.bytes_loaded
                assert split.bytes_stored == plain.bytes_stored
                assert split.flops == plain.flops
            plain, split = PerfCounters(), PerfCounters()
            charge_aug_spmv(blk.matrix, plain)
            charge_aug_spmv_part(
                s.n_interior, s.nnz_interior, split, "aug_spmv_int")
            charge_aug_spmv_part(
                s.n_boundary, s.nnz_boundary, split, "aug_spmv_bnd")
            assert split.bytes_total == plain.bytes_total
            assert split.flops == plain.flops

    def test_measured_exact_sum(self, dist, backend):
        h, d = dist
        bk = get_backend(backend)
        rng = np.random.default_rng(13)
        blk = d.blocks[0]
        xbuf, w0 = _rank_inputs(h, blk, 4, rng)
        c_plain, c_split = PerfCounters(), PerfCounters()
        bk.aug_spmmv_step(blk.matrix, xbuf, w0.copy(), 0.37, 0.05,
                          counters=c_plain)
        plan = bk.split_plan(blk.matrix, task_split(blk), 4)
        bk.aug_spmmv_split_step(blk.matrix, xbuf, w0.copy(), 0.37, 0.05,
                                plan, counters=c_split)
        assert c_split.bytes_loaded == c_plain.bytes_loaded
        assert c_split.bytes_stored == c_plain.bytes_stored
        assert c_split.flops == c_plain.flops
        assert c_split.calls == {"aug_spmmv_int": 1, "aug_spmmv_bnd": 1}


class TestFallback:
    def test_sell_rejected(self):
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 2)
        s = SellMatrix(h, chunk_height=8, sigma=16)
        split = SimpleNamespace(
            row0=0, row1=h.n_rows, boundary=np.empty(0, dtype=np.int64))
        with pytest.raises(BackendError, match="CSR"):
            SplitKernelPlan(s, split, 1)

    def test_backend_without_split_kernels(self, dist):
        """The base class fails loudly, naming the backend."""

        class Bare(KernelBackend):
            name = "bare"

            def available(self):
                return True

            def spmv(self, *a, **k):
                raise NotImplementedError

            spmmv = naive_step = aug_spmv_step = aug_spmmv_step = spmv

        h, d = dist
        with pytest.raises(BackendError, match="split kernels"):
            Bare().aug_spmmv_interior(None, None, None, 0.0, 0.0, None)
        with pytest.raises(BackendError, match="split kernels"):
            Bare().aug_spmv_boundary(None, None, None, 0.0, 0.0, None)


class TestNoAllocation:
    """Steady-state split iterations reuse the plan workspaces."""

    def _measure(self, fn):
        fn()
        fn()  # warm-ups: lazy imports, caches, plan first-touch
        tracemalloc.start()
        fn()
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak - current

    def test_split_block_step(self, dist, backend):
        h, d = dist
        blk = d.blocks[0]
        bk = get_backend(backend)
        rng = np.random.default_rng(17)
        r = 16
        xbuf, w = _rank_inputs(h, blk, r, rng)
        plan = bk.split_plan(blk.matrix, task_split(blk), r)
        grew = self._measure(
            lambda: bk.aug_spmmv_split_step(
                blk.matrix, xbuf, w, 0.37, 0.05, plan)
        )
        # the two phases cost a constant few KB of ctypes/view wrappers;
        # materializing even the smallest phase buffer (the boundary
        # scratch) would at least double that, which is what we forbid
        assert grew < plan.u_boundary.nbytes, \
            f"{grew} bytes allocated in the loop"

    def test_halo_pack(self, dist):
        """The mp engine's send-window assembly is allocation-free."""
        from repro.dist.mp import _pack_halo

        h, d = dist
        rng = np.random.default_rng(19)
        vec = _block(rng, d.blocks[0].n_local, 8)
        packs = []
        for (p, _q), rows in d.pattern.send_rows.items():
            if p != 0:
                continue
            win = np.empty((rows.size, 8), dtype=DTYPE)
            packs.append((rows, win))
        assert packs  # rank 0 sends at least one edge

        def loop():
            for rows, win in packs:
                _pack_halo(vec, rows, win)

        grew = self._measure(loop)
        # a few hundred bytes of interpreter churn is fine; a gather
        # temporary would be window-sized (tens of KB)
        assert grew < 2048, f"{grew} bytes allocated packing halos"
