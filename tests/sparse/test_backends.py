"""Parity between the compiled fast backend and the pure-NumPy kernels."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import set_fast_backend, spmmv, spmv


@pytest.fixture
def pure_backend():
    """Run the enclosed test with the pure-NumPy kernels."""
    old = set_fast_backend(False)
    yield
    set_fast_backend(old)


@pytest.fixture
def matrices(small_hermitian):
    m, dense = small_hermitian
    return m, SellMatrix(m, chunk_height=8, sigma=16), dense


class TestBackendParity:
    def test_set_fast_backend_returns_previous(self):
        old = set_fast_backend(False)
        try:
            assert set_fast_backend(True) is False
            assert set_fast_backend(old) is True
        finally:
            set_fast_backend(old)

    def test_spmv_identical(self, matrices, rng):
        m, s, dense = matrices
        x = rng.normal(size=40) + 1j * rng.normal(size=40)
        fast_csr = spmv(m, x)
        fast_sell = spmv(s, x)
        old = set_fast_backend(False)
        try:
            assert np.allclose(spmv(m, x), fast_csr, atol=1e-12)
            assert np.allclose(spmv(s, x), fast_sell, atol=1e-12)
        finally:
            set_fast_backend(old)

    @pytest.mark.parametrize("r", [1, 3, 8])
    def test_spmmv_identical(self, matrices, rng, r):
        m, s, dense = matrices
        x = np.ascontiguousarray(
            rng.normal(size=(40, r)) + 1j * rng.normal(size=(40, r))
        )
        fast = spmmv(m, x)
        old = set_fast_backend(False)
        try:
            assert np.allclose(spmmv(m, x), fast, atol=1e-12)
            assert np.allclose(spmmv(s, x), fast, atol=1e-12)
        finally:
            set_fast_backend(old)

    def test_pure_paths_match_dense(self, matrices, rng, pure_backend):
        m, s, dense = matrices
        x = np.ascontiguousarray(
            rng.normal(size=(40, 5)) + 1j * rng.normal(size=(40, 5))
        )
        assert np.allclose(spmmv(m, x), dense @ x, atol=1e-10)
        assert np.allclose(spmmv(s, x), dense @ x, atol=1e-10)

    def test_pure_path_row_blocking(self, rng, pure_backend):
        """Matrices larger than one row block exercise the block loop."""
        import sys

        # the package re-exports the `spmv` *function* under the module's
        # name, so fetch the module object itself
        sm = sys.modules["repro.sparse.spmv"]
        old_block = sm._SPMMV_ROW_BLOCK
        sm._SPMMV_ROW_BLOCK = 16  # force many blocks
        try:
            n = 100
            dense = (rng.normal(size=(n, n)) + 0j) * (rng.random((n, n)) < 0.1)
            m = CSRMatrix.from_dense(dense)
            s = SellMatrix(m, chunk_height=8, sigma=8)
            x = np.ascontiguousarray(rng.normal(size=(n, 4)) + 0j)
            assert np.allclose(spmmv(m, x), dense @ x, atol=1e-10)
            assert np.allclose(spmmv(s, x), dense @ x, atol=1e-10)
        finally:
            sm._SPMMV_ROW_BLOCK = old_block

    def test_counters_identical_across_backends(self, matrices):
        """Accounting must not depend on the compute backend."""
        from repro.util.counters import PerfCounters

        m, _, _ = matrices
        x = np.zeros((40, 4), dtype=complex)
        c_fast = PerfCounters()
        spmmv(m, x, counters=c_fast)
        old = set_fast_backend(False)
        try:
            c_pure = PerfCounters()
            spmmv(m, x, counters=c_pure)
        finally:
            set_fast_backend(old)
        assert c_fast.bytes_total == c_pure.bytes_total
        assert c_fast.flops == c_pure.flops

    def test_solver_results_backend_independent(self, pure_backend):
        """A full KPM solve gives the same DOS on either backend."""
        from repro.core.solver import KPMSolver
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 2)
        pure = KPMSolver(h, n_moments=32, n_vectors=2, seed=0).dos().rho
        set_fast_backend(True)
        fast = KPMSolver(h, n_moments=32, n_vectors=2, seed=0).dos().rho
        assert np.allclose(pure, fast, atol=1e-9)
