"""SpMV / SpMMV kernels against dense references, plus traffic accounting."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import spmmv, spmv
from repro.util.constants import F_ADD, F_MUL, S_D, S_I
from repro.util.counters import PerfCounters
from repro.util.errors import ShapeError


@pytest.fixture
def matrix_pair(small_hermitian):
    m, dense = small_hermitian
    return m, SellMatrix(m, chunk_height=8, sigma=16), dense


class TestSpmv:
    def test_csr_matches_dense(self, matrix_pair, rng):
        m, _, dense = matrix_pair
        x = rng.normal(size=40) + 1j * rng.normal(size=40)
        assert np.allclose(spmv(m, x), dense @ x)

    def test_sell_matches_dense(self, matrix_pair, rng):
        _, s, dense = matrix_pair
        x = rng.normal(size=40) + 1j * rng.normal(size=40)
        assert np.allclose(spmv(s, x), dense @ x)

    def test_out_parameter(self, matrix_pair, rng):
        m, _, dense = matrix_pair
        x = rng.normal(size=40) + 0j
        out = np.empty(40, dtype=complex)
        y = spmv(m, x, out=out)
        assert y is out
        assert np.allclose(out, dense @ x)

    def test_wrong_out_shape(self, matrix_pair):
        m, _, _ = matrix_pair
        with pytest.raises(ShapeError):
            spmv(m, np.zeros(40, dtype=complex), out=np.empty(39, dtype=complex))

    def test_wrong_x_shape(self, matrix_pair):
        m, _, _ = matrix_pair
        with pytest.raises(ShapeError):
            spmv(m, np.zeros(41, dtype=complex))

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            spmv(np.eye(3), np.zeros(3))

    def test_empty_rows(self):
        m = CSRMatrix.from_coo([2], [0], [3.0], (4, 4))
        y = spmv(m, np.ones(4, dtype=complex))
        assert np.allclose(y, [0, 0, 3, 0])

    def test_rectangular(self):
        m = CSRMatrix.from_coo([0, 1], [4, 2], [2.0, 1.0], (2, 5))
        y = spmv(m, np.arange(5).astype(complex))
        assert np.allclose(y, [8.0, 2.0])


class TestSpmmv:
    @pytest.mark.parametrize("r", [1, 2, 3, 8])
    def test_csr_matches_dense(self, matrix_pair, rng, r):
        m, _, dense = matrix_pair
        x = np.ascontiguousarray(
            rng.normal(size=(40, r)) + 1j * rng.normal(size=(40, r))
        )
        assert np.allclose(spmmv(m, x), dense @ x)

    @pytest.mark.parametrize("r", [1, 4, 7])
    def test_sell_matches_dense(self, matrix_pair, rng, r):
        _, s, dense = matrix_pair
        x = np.ascontiguousarray(
            rng.normal(size=(40, r)) + 1j * rng.normal(size=(40, r))
        )
        assert np.allclose(spmmv(s, x), dense @ x)

    def test_consistent_with_column_spmv(self, matrix_pair, rng):
        m, _, _ = matrix_pair
        x = np.ascontiguousarray(
            rng.normal(size=(40, 5)) + 1j * rng.normal(size=(40, 5))
        )
        y = spmmv(m, x)
        for j in range(5):
            assert np.allclose(y[:, j], spmv(m, x[:, j].copy()))

    def test_requires_row_major(self, matrix_pair):
        m, _, _ = matrix_pair
        x = np.asfortranarray(np.zeros((40, 3), dtype=complex))
        with pytest.raises(ShapeError, match="C-contiguous"):
            spmmv(m, x)

    def test_out_shape_checked(self, matrix_pair):
        m, _, _ = matrix_pair
        x = np.zeros((40, 2), dtype=complex)
        with pytest.raises(ShapeError):
            spmmv(m, x, out=np.empty((40, 3), dtype=complex))


class TestAccounting:
    def test_spmv_table1_bytes(self, matrix_pair):
        m, _, _ = matrix_pair
        c = PerfCounters()
        spmv(m, np.zeros(40, dtype=complex), counters=c)
        n, nnz = 40, m.nnz
        assert c.bytes_loaded == nnz * (S_D + S_I) + n * S_D
        assert c.bytes_stored == n * S_D
        assert c.flops == nnz * (F_ADD + F_MUL)
        assert c.calls == {"spmv": 1}

    def test_spmmv_matrix_read_once(self, matrix_pair):
        """The defining property: matrix bytes independent of R."""
        m, _, _ = matrix_pair
        r = 8
        c = PerfCounters()
        spmmv(m, np.zeros((40, r), dtype=complex), counters=c)
        n, nnz = 40, m.nnz
        assert c.bytes_loaded == nnz * (S_D + S_I) + r * n * S_D
        assert c.bytes_stored == r * n * S_D
        assert c.flops == r * nnz * (F_ADD + F_MUL)

    def test_sell_charges_padded_slots(self):
        rows = [0, 0, 0, 0, 1]
        m = CSRMatrix.from_coo(rows, [0, 1, 2, 3, 0], np.ones(5), (2, 4))
        s = SellMatrix(m, chunk_height=2)
        assert s.stored_slots == 8  # both rows padded to 4
        c = PerfCounters()
        spmv(s, np.zeros(4, dtype=complex), counters=c)
        assert c.flops == 8 * (F_ADD + F_MUL)
        assert c.bytes_loaded == 8 * (S_D + S_I) + 2 * S_D
