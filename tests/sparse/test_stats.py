"""Sparsity-structure diagnostics."""

import numpy as np
import pytest

from repro.physics import build_topological_insulator
from repro.sparse.csr import CSRMatrix
from repro.sparse.stats import (
    analyze,
    row_length_histogram,
    stencil_reuse_rows,
)


class TestAnalyze:
    def test_ti_matches_paper_description(self):
        """Paper Sec. I-B: several sub-diagonals, corner diagonals from
        periodic x/y, 'a stencil but not a band matrix'."""
        h, _ = build_topological_insulator(8, 8, 6)
        stats = analyze(h)
        assert stats.nnzr_mean == pytest.approx(h.nnzr)
        assert len(stats.diagonals) > 5  # several sub-diagonals
        assert stats.diagonal_coverage > 0.95
        assert stats.has_corner_entries  # periodic wrap in y
        assert stats.is_stencil_like

    def test_diagonal_matrix(self):
        m = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0, 4.0]))
        stats = analyze(m)
        assert stats.diagonals == [0]
        assert stats.diagonal_coverage == pytest.approx(1.0)
        assert stats.bandwidth == 0
        assert not stats.has_corner_entries

    def test_random_matrix_not_stencil(self, rng):
        n = 64
        mask = rng.random((n, n)) < 0.05
        m = CSRMatrix.from_dense(mask.astype(float))
        stats = analyze(m)
        assert not stats.is_stencil_like or stats.diagonal_coverage <= 0.9

    def test_empty_matrix(self):
        m = CSRMatrix.from_coo([], [], [], (4, 4))
        stats = analyze(m)
        assert stats.nnz == 0
        assert stats.diagonals == []
        assert stats.bandwidth == 0

    def test_diagonals_sorted_by_population(self):
        rows = [0, 1, 2, 3, 0, 1, 2, 0]
        cols = [0, 1, 2, 3, 1, 2, 3, 2]  # diag 0 x4, diag +1 x3, diag +2 x1
        m = CSRMatrix.from_coo(rows, cols, np.ones(8), (4, 4))
        stats = analyze(m, diag_threshold=0.2)
        assert stats.diagonals[0] == 0
        assert stats.diagonals[1] == 1


class TestReuseWindow:
    def test_tridiagonal(self):
        n = 50
        d = np.diag(np.ones(n)) + np.diag(np.ones(n - 1), 1) + np.diag(
            np.ones(n - 1), -1
        )
        m = CSRMatrix.from_dense(d)
        assert stencil_reuse_rows(m) == pytest.approx(2.0)

    def test_ti_scales_with_plane_size(self):
        h1, _ = build_topological_insulator(6, 6, 6)
        h2, _ = build_topological_insulator(12, 12, 6)
        assert stencil_reuse_rows(h2) > 2 * stencil_reuse_rows(h1)

    def test_empty(self):
        assert stencil_reuse_rows(CSRMatrix.from_coo([], [], [], (2, 2))) == 0.0


class TestHistogram:
    def test_ti_histogram(self):
        h, _ = build_topological_insulator(4, 4, 4, pbc=(True, True, True))
        assert row_length_histogram(h) == {13: h.n_rows}

    def test_counts_sum_to_rows(self, small_hermitian):
        m, _ = small_hermitian
        hist = row_length_histogram(m)
        assert sum(hist.values()) == m.n_rows
