"""Damping-kernel coefficient properties."""

import numpy as np
import pytest

from repro.core.damping import (
    dirichlet_kernel,
    get_kernel,
    jackson_kernel,
    lorentz_kernel,
)


class TestJackson:
    def test_g0_is_one(self):
        for m in (8, 64, 501):
            assert jackson_kernel(m)[0] == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        g = jackson_kernel(128)
        assert np.all(np.diff(g) < 0)

    def test_positive(self):
        assert np.all(jackson_kernel(256) > 0)

    def test_last_coefficient_small(self):
        g = jackson_kernel(512)
        assert g[-1] < 0.01

    def test_resolution_improves_with_m(self):
        """Higher M keeps more of the high harmonics: g_m(M) grows in M."""
        g1 = jackson_kernel(64)
        g2 = jackson_kernel(256)
        assert g2[32] > g1[32]


class TestLorentz:
    def test_g0_is_one(self):
        assert lorentz_kernel(100)[0] == pytest.approx(1.0)

    def test_lambda_controls_damping(self):
        soft = lorentz_kernel(100, lam=2.0)
        hard = lorentz_kernel(100, lam=6.0)
        assert np.all(soft[1:] >= hard[1:])

    def test_positive_decreasing(self):
        g = lorentz_kernel(64)
        assert np.all(g > 0)
        assert np.all(np.diff(g) < 0)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            lorentz_kernel(10, lam=0.0)


class TestDirichlet:
    def test_all_ones(self):
        assert np.all(dirichlet_kernel(33) == 1.0)


class TestLookup:
    @pytest.mark.parametrize("name", ["jackson", "lorentz", "dirichlet", "none"])
    def test_known_kernels(self, name):
        g = get_kernel(name, 16)
        assert g.shape == (16,)

    def test_case_insensitive(self):
        assert np.allclose(get_kernel("Jackson", 8), jackson_kernel(8))

    def test_kwargs_forwarded(self):
        assert np.allclose(
            get_kernel("lorentz", 8, lam=3.0), lorentz_kernel(8, lam=3.0)
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("fejer", 8)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            jackson_kernel(0)
