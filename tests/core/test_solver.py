"""KPMSolver facade: DOS vs exact diagonalization, LDOS, A(k,E)."""

import numpy as np
import pytest

from repro.core.reconstruct import integrate_density
from repro.core.solver import KPMSolver
from repro.physics import build_topological_insulator
from repro.physics.graphene import build_graphene_dot_lattice
from repro.util.counters import PerfCounters


@pytest.fixture(scope="module")
def solved():
    h, model = build_topological_insulator(6, 6, 4)
    solver = KPMSolver(h, n_moments=256, n_vectors=24, seed=42)
    lam = np.linalg.eigvalsh(h.to_dense())
    return h, model, solver, lam


class TestDos:
    def test_integrates_to_n(self, solved):
        h, _, solver, _ = solved
        res = solver.dos()
        assert integrate_density(res.energies, res.rho) == pytest.approx(
            h.n_rows, rel=0.03
        )

    def test_matches_eigenvalue_histogram(self, solved):
        """Cumulative KPM DOS tracks the exact counting function."""
        h, _, solver, lam = solved
        res = solver.dos()
        for e_cut in (-2.0, 0.0, 1.5):
            exact = (lam <= e_cut).sum()
            kpm = integrate_density(res.energies, res.rho, res.energies[0], e_cut)
            assert kpm == pytest.approx(exact, abs=0.06 * h.n_rows)

    def test_nonnegative(self, solved):
        _, _, solver, _ = solved
        res = solver.dos()
        assert np.all(res.rho > -1e-9)

    def test_normalized_copy(self, solved):
        _, _, solver, _ = solved
        res = solver.dos().normalized()
        assert integrate_density(res.energies, res.rho) == pytest.approx(
            1.0, rel=0.03
        )

    def test_engines_agree_with_same_seed(self, solved):
        h, _, _, _ = solved
        rhos = []
        for eng in ("naive", "aug_spmv", "aug_spmmv"):
            s = KPMSolver(h, n_moments=64, n_vectors=4, seed=7, engine=eng)
            rhos.append(s.dos().rho)
        assert np.allclose(rhos[0], rhos[1], atol=1e-8)
        assert np.allclose(rhos[0], rhos[2], atol=1e-8)

    def test_eigencount(self, solved):
        h, _, solver, lam = solved
        exact = ((lam >= -1.0) & (lam <= 1.0)).sum()
        est = solver.eigencount(-1.0, 1.0)
        assert est == pytest.approx(exact, abs=0.08 * h.n_rows)

    def test_counters_accumulate(self):
        h, _ = build_topological_insulator(4, 4, 2)
        c = PerfCounters()
        s = KPMSolver(h, n_moments=32, n_vectors=2, seed=0, counters=c)
        s.dos()
        assert c.flops > 0 and c.bytes_total > 0


class TestLdos:
    def test_surface_vs_bulk_differ_with_dots(self):
        h, model = build_topological_insulator(8, 8, 4)
        from repro.physics.potentials import dot_superlattice_potential

        pot = dot_superlattice_potential(
            model.lattice, v_dot=1.0, spacing=4, radius=1.5
        )
        hd = model.build(pot)
        s = KPMSolver(hd, n_moments=64, n_vectors=8, seed=0)
        lat = model.lattice
        in_dot = 4 * lat.site_index(2, 2, 0)
        out_dot = 4 * lat.site_index(0, 0, 0)
        res = s.ldos(np.array([in_dot, out_dot]), exact=True)
        assert res.rho.shape[0] == 2
        assert not np.allclose(res.rho[0], res.rho[1], rtol=0.05)

    def test_exact_vs_stochastic(self):
        h, _ = build_topological_insulator(4, 4, 2)
        rows = np.array([0, 9])
        ex = KPMSolver(h, n_moments=32, n_vectors=1, seed=0).ldos(
            rows, exact=True
        )
        st = KPMSolver(h, n_moments=32, n_vectors=300, seed=0).ldos(rows)
        # stochastic estimate tracks the exact curve
        scale = np.abs(ex.rho).max()
        assert np.allclose(st.rho, ex.rho, atol=0.25 * scale)

    def test_at_energy(self):
        h, _ = build_topological_insulator(4, 4, 2)
        res = KPMSolver(h, n_moments=32, n_vectors=1, seed=0).ldos(
            np.array([0]), exact=True
        )
        v = res.at_energy(0.0)
        idx = np.argmin(np.abs(res.energies))
        assert v[0] == res.rho[0, idx]


class TestSpectralFunction:
    def test_peak_tracks_band(self):
        """For clean graphene, A(k, E) must peak at the band energy
        E(k) = ±|f(k)|; we check the k = 0 point where E = ±3t."""
        h, model = build_graphene_dot_lattice(8, 8)
        # reuse the TI solver machinery on the TI model instead: graphene
        # has no 4-orbital lattice; use the TI plane-wave path.
        h, model = build_topological_insulator(8, 8, 1, pbc=(True, True, False))
        s = KPMSolver(h, n_moments=128, n_vectors=1, seed=0)
        res = s.spectral_function(model.lattice, [(0.0, 0.0, 0.0)])
        assert res.a_ke.shape[0] == 1
        # spectral weight is concentrated at a few energies (4 bands at k=0)
        total = np.trapezoid(res.a_ke[0], res.energies)
        assert total == pytest.approx(4.0, rel=0.1)  # 4 orbitals

    def test_band_maximum_shape(self):
        h, model = build_topological_insulator(6, 6, 1)
        s = KPMSolver(h, n_moments=64, n_vectors=1, seed=0)
        ks = [(0, 0, 0), (np.pi / 3, 0, 0)]
        res = s.spectral_function(model.lattice, ks)
        assert res.band_maximum().shape == (2,)


class TestConfiguration:
    def test_invalid_bounds_mode(self, solved):
        h, _, _, _ = solved
        with pytest.raises(ValueError):
            KPMSolver(h, bounds="magic")

    def test_gershgorin_bounds_option(self, solved):
        h, _, _, _ = solved
        s = KPMSolver(h, n_moments=16, n_vectors=1, bounds="gershgorin", seed=0)
        assert s.scale.a > 0

    def test_invalid_engine(self, solved):
        h, _, _, _ = solved
        with pytest.raises(ValueError):
            KPMSolver(h, engine="quantum")

    def test_positive_parameters(self, solved):
        h, _, _, _ = solved
        with pytest.raises(ValueError):
            KPMSolver(h, n_moments=0)
        with pytest.raises(ValueError):
            KPMSolver(h, n_vectors=0)
