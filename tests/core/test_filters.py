"""Polynomial spectral window filters."""

import numpy as np
import pytest

from repro.core.filters import (
    apply_filter,
    evaluate_window,
    filtered_subspace,
    window_coefficients,
)
from repro.core.scaling import lanczos_scale


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(4, 4, 3)
    scale = lanczos_scale(h, seed=0)
    lam, vecs = np.linalg.eigh(h.to_dense())
    return h, scale, lam, vecs


class TestCoefficients:
    def test_scalar_window_shape(self):
        c = window_coefficients(-0.3, 0.4, 1024)
        x = np.linspace(-0.95, 0.95, 401)
        w = evaluate_window(c, x)
        inside = (x > -0.25) & (x < 0.35)
        outside = (x < -0.4) | (x > 0.5)
        assert np.all(w[inside] > 0.9)
        assert np.all(np.abs(w[outside]) < 0.1)

    def test_c0_is_window_measure(self):
        """c_0 equals the arccos measure of the window."""
        c = window_coefficients(-0.5, 0.5, 64)
        assert c[0] * np.pi == pytest.approx(
            np.arccos(-0.5) - np.arccos(0.5)
        )

    def test_full_interval_approaches_identity(self):
        c = window_coefficients(-0.999, 0.999, 512)
        x = np.linspace(-0.9, 0.9, 101)
        assert np.allclose(evaluate_window(c, x), 1.0, atol=0.02)

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            window_coefficients(0.5, 0.4, 32)
        with pytest.raises(ValueError):
            window_coefficients(-1.2, 0.0, 32)
        with pytest.raises(ValueError):
            window_coefficients(-0.5, 0.5, 0)


class TestApplyFilter:
    def test_matches_dense_projector(self, system):
        """P_approx v ~ sum over window eigenpairs of <u|v> u."""
        h, scale, lam, vecs = system
        rng = np.random.default_rng(3)
        v = rng.normal(size=h.n_rows) + 1j * rng.normal(size=h.n_rows)
        e_lo, e_hi = -1.0, 1.0
        out = apply_filter(h, scale, v, e_lo, e_hi, order=2048)
        # reference projector with a safety margin off the window edges
        weights = np.conj(vecs.T) @ v
        inside = (lam > e_lo + 0.15) & (lam < e_hi - 0.15)
        outside = (lam < e_lo - 0.15) | (lam > e_hi + 0.15)
        comps = np.conj(vecs.T) @ out
        assert np.allclose(comps[inside], weights[inside], rtol=0.05,
                           atol=0.02 * np.abs(weights).max())
        assert np.all(
            np.abs(comps[outside]) < 0.05 * np.abs(weights).max() + 1e-10
        )

    def test_idempotent_away_from_edges(self, system):
        """P^2 = P holds for components away from the window edges
        (edge eigenstates carry weight ~0.5 and lose half per pass)."""
        h, scale, lam, vecs = system
        rng = np.random.default_rng(5)
        v = rng.normal(size=h.n_rows) + 0j
        once = apply_filter(h, scale, v, -1.0, 1.0, order=1024)
        twice = apply_filter(h, scale, once, -1.0, 1.0, order=1024)
        away = (np.abs(lam + 1.0) > 0.15) & (np.abs(lam - 1.0) > 0.15)
        c1 = (np.conj(vecs.T) @ once)[away]
        c2 = (np.conj(vecs.T) @ twice)[away]
        assert np.allclose(c2, c1, atol=0.02 * np.abs(c1).max())

    def test_block_input(self, system):
        h, scale, _, _ = system
        rng = np.random.default_rng(1)
        block = np.ascontiguousarray(
            rng.normal(size=(h.n_rows, 3)) + 0j
        )
        out = apply_filter(h, scale, block, -0.5, 0.5, order=256)
        assert out.shape == block.shape
        for j in range(3):
            single = apply_filter(
                h, scale, block[:, j].copy(), -0.5, 0.5, order=256
            )
            assert np.allclose(out[:, j], single, atol=1e-12)

    def test_window_validation(self, system):
        h, scale, _, _ = system
        v = np.zeros(h.n_rows, dtype=complex)
        with pytest.raises(ValueError):
            apply_filter(h, scale, v, 1.0, -1.0)


class TestFilteredSubspace:
    def test_captures_window_eigenvectors(self, system):
        """The filtered random subspace must contain the window's
        eigenvectors (FEAST filtering round)."""
        h, scale, lam, vecs = system
        e_lo, e_hi = -0.8, 0.8
        inside = (lam > e_lo + 0.1) & (lam < e_hi - 0.1)
        k = int(inside.sum())
        q = filtered_subspace(
            h, scale, e_lo, e_hi, n_vectors=k + 10, order=1024, seed=2
        )
        # each interior eigenvector must lie in span(q)
        proj = q @ (np.conj(q.T) @ vecs[:, inside])
        residual = np.linalg.norm(proj - vecs[:, inside], axis=0)
        assert np.all(residual < 0.05)

    def test_orthonormal(self, system):
        h, scale, _, _ = system
        q = filtered_subspace(h, scale, -1, 1, n_vectors=6, order=128, seed=0)
        assert np.allclose(np.conj(q.T) @ q, np.eye(6), atol=1e-10)
