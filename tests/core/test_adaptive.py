"""Adaptive trace estimation and resolution planning."""

import numpy as np
import pytest

from repro.core.adaptive import (
    adaptive_trace_moments,
    moments_for_resolution,
    resolution_for_moments,
)
from repro.core.moments import compute_dos_moments
from repro.core.scaling import SpectralScale, lanczos_scale
from repro.core.stochastic import make_block_vector


class TestResolutionPlanning:
    def test_roundtrip(self):
        scale = SpectralScale.from_bounds(-5, 5)
        m = moments_for_resolution(scale, 0.01)
        assert resolution_for_moments(scale, m) <= 0.0101

    def test_even(self):
        scale = SpectralScale.from_bounds(-1, 1)
        for de in (0.3, 0.01, 0.004):
            assert moments_for_resolution(scale, de) % 2 == 0

    def test_wider_spectrum_needs_more_moments(self):
        narrow = SpectralScale.from_bounds(-1, 1)
        wide = SpectralScale.from_bounds(-10, 10)
        assert moments_for_resolution(wide, 0.05) > moments_for_resolution(
            narrow, 0.05
        )

    def test_validation(self):
        scale = SpectralScale.from_bounds(-1, 1)
        with pytest.raises(ValueError):
            moments_for_resolution(scale, 0.0)
        with pytest.raises(ValueError):
            resolution_for_moments(scale, 0)


class TestAdaptiveTrace:
    @pytest.fixture(scope="class")
    def system(self):
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(6, 6, 3)
        return h, lanczos_scale(h, seed=0)

    def test_converges_with_loose_tolerance(self, system):
        h, scale = system
        res = adaptive_trace_moments(
            h, scale, 16, rel_tol=0.05, batch=8, max_vectors=128, seed=1
        )
        assert res.converged
        assert res.n_vectors <= 128
        assert res.relative_error() <= 0.05
        assert res.moments[0] == pytest.approx(h.n_rows, rel=0.05)

    def test_gives_up_at_max_vectors(self, system):
        h, scale = system
        res = adaptive_trace_moments(
            h, scale, 16, rel_tol=1e-9, batch=4, max_vectors=8, seed=1
        )
        assert not res.converged
        assert res.n_vectors == 8
        assert res.batches == 2

    def test_matches_fixed_r_estimate(self, system):
        """The adaptive estimate is an ordinary R-vector average."""
        h, scale = system
        res = adaptive_trace_moments(
            h, scale, 8, rel_tol=1e-12, batch=16, max_vectors=16, seed=5
        )
        # same moments magnitude as a direct run with comparable R
        direct = compute_dos_moments(
            h, scale, 8, make_block_vector(h.n_rows, 16, seed=99)
        )
        assert res.moments[0] == pytest.approx(direct[0], rel=1e-9)
        assert np.allclose(res.moments[1:], direct[1:], atol=0.2 * h.n_rows)

    def test_tighter_tolerance_uses_more_vectors(self, system):
        h, scale = system
        loose = adaptive_trace_moments(
            h, scale, 16, rel_tol=0.05, batch=4, max_vectors=256, seed=3
        )
        tight = adaptive_trace_moments(
            h, scale, 16, rel_tol=0.01, batch=4, max_vectors=256, seed=3
        )
        assert tight.n_vectors >= loose.n_vectors

    def test_validation(self, system):
        h, scale = system
        with pytest.raises(ValueError):
            adaptive_trace_moments(h, scale, 8, rel_tol=0.0)
        with pytest.raises(ValueError):
            adaptive_trace_moments(h, scale, 8, batch=0)
