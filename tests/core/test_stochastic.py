"""Stochastic estimators: ensembles, trace statistics, LDOS."""

import numpy as np
import pytest

from repro.core.scaling import lanczos_scale
from repro.core.stochastic import (
    ldos_moments,
    make_block_vector,
    trace_from_moments,
    unit_block_vector,
)
from repro.util.errors import ShapeError


class TestBlockVectors:
    def test_shape_and_layout(self):
        b = make_block_vector(50, 7, seed=0)
        assert b.shape == (50, 7)
        assert b.flags.c_contiguous

    @pytest.mark.parametrize("kind", ["phase", "rademacher", "gaussian"])
    def test_ensembles(self, kind):
        b = make_block_vector(100, 3, kind=kind, seed=0)
        assert b.dtype == np.complex128

    def test_columns_independent(self):
        b = make_block_vector(200, 2, seed=0)
        corr = abs(np.vdot(b[:, 0], b[:, 1])) / 200
        assert corr < 0.2

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="ensemble"):
            make_block_vector(10, 1, kind="sobol")

    def test_reproducible(self):
        assert np.allclose(
            make_block_vector(20, 2, seed=3), make_block_vector(20, 2, seed=3)
        )

    def test_unit_block(self):
        b = unit_block_vector(6, np.array([1, 4]))
        assert b[1, 0] == 1 and b[4, 1] == 1
        assert np.count_nonzero(b) == 2

    def test_unit_block_validation(self):
        with pytest.raises(ValueError):
            unit_block_vector(4, np.array([5]))
        with pytest.raises(ShapeError):
            unit_block_vector(4, np.array([[0]]))


class TestTraceStats:
    def test_mean_and_stderr(self):
        mu = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        mean, err = trace_from_moments(mu)
        assert np.allclose(mean, [3.0, 4.0])
        assert np.allclose(err, np.std(mu, axis=0, ddof=1) / np.sqrt(3))

    def test_single_vector_no_error(self):
        mean, err = trace_from_moments(np.array([[1.0, 2.0]]))
        assert np.all(err == 0)

    def test_shape_checked(self):
        with pytest.raises(ShapeError):
            trace_from_moments(np.ones(5))

    def test_stderr_shrinks_with_r(self, ti_small):
        from repro.core.moments import compute_eta, eta_to_moments

        h, _ = ti_small
        scale = lanczos_scale(h, seed=0)
        errs = []
        for r in (8, 64):
            blk = make_block_vector(h.n_rows, r, seed=1)
            mu = eta_to_moments(compute_eta(h, scale, 8, blk)).real
            _, err = trace_from_moments(mu)
            errs.append(err[2])
        assert errs[1] < errs[0]


class TestLdos:
    def test_exact_matches_dense_diagonal(self, ti_small):
        h, _ = ti_small
        n = h.n_rows
        scale = lanczos_scale(h, seed=0)
        rows = np.array([0, 17, n - 1])
        mu = ldos_moments(h, scale, 16, unit_block_vector(n, rows), rows)
        dense = h.to_dense()
        ht = scale.a * (dense - scale.b * np.eye(n))
        t_prev, t_cur = np.eye(n), ht.copy()
        for m in range(16):
            if m >= 2:
                t_next = 2 * ht @ t_cur - t_prev
                t_prev, t_cur = t_cur, t_next
            t_m = np.eye(n) if m == 0 else (ht if m == 1 else t_cur)
            assert np.allclose(mu[:, m], np.diag(t_m)[rows].real, atol=1e-8)

    def test_stochastic_converges_to_exact(self, ti_small):
        h, _ = ti_small
        n = h.n_rows
        scale = lanczos_scale(h, seed=0)
        rows = np.array([3, 50])
        exact = ldos_moments(h, scale, 12, unit_block_vector(n, rows), rows)
        est = ldos_moments(
            h, scale, 12, make_block_vector(n, 400, seed=7), rows
        )
        assert np.allclose(est, exact, atol=0.12)

    def test_moment_zero_is_one(self, ti_small):
        """mu_0[i] = <i|1|i> = 1 exactly (unit vectors) or ~1 (stochastic)."""
        h, _ = ti_small
        scale = lanczos_scale(h, seed=0)
        rows = np.array([1, 2])
        mu = ldos_moments(
            h, scale, 4, unit_block_vector(h.n_rows, rows), rows
        )
        assert np.allclose(mu[:, 0], 1.0)

    def test_m_validated(self, ti_small):
        h, _ = ti_small
        scale = lanczos_scale(h, seed=0)
        with pytest.raises(ValueError):
            ldos_moments(h, scale, 1, make_block_vector(h.n_rows, 1), np.array([0]))
