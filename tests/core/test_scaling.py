"""Spectral bounds and the [-1, 1] rescaling map."""

import numpy as np
import pytest

from repro.core.scaling import (
    SpectralScale,
    gershgorin_scale,
    lanczos_bounds,
    lanczos_scale,
)
from repro.sparse.sell import SellMatrix


class TestSpectralScale:
    def test_roundtrip(self):
        s = SpectralScale.from_bounds(-3.0, 5.0)
        e = np.linspace(-3, 5, 17)
        assert np.allclose(s.from_unit(s.to_unit(e)), e)

    def test_bounds_map_inside_unit_interval(self):
        s = SpectralScale.from_bounds(-3.0, 5.0, epsilon=0.05)
        assert s.to_unit(-3.0) == pytest.approx(-0.95)
        assert s.to_unit(5.0) == pytest.approx(0.95)

    def test_center(self):
        s = SpectralScale.from_bounds(-2.0, 6.0)
        assert s.to_unit(2.0) == pytest.approx(0.0)
        assert s.b == pytest.approx(2.0)

    def test_jacobian_is_a(self):
        s = SpectralScale.from_bounds(0.0, 4.0, epsilon=0.0)
        assert s.density_jacobian() == pytest.approx(s.a) == pytest.approx(0.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            SpectralScale.from_bounds(1.0, 1.0)
        with pytest.raises(ValueError):
            SpectralScale.from_bounds(2.0, 1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SpectralScale.from_bounds(0, 1, epsilon=0.9)


class TestGershgorin:
    def test_spectrum_strictly_inside(self, ti_small):
        h, _ = ti_small
        s = gershgorin_scale(h)
        lam = np.linalg.eigvalsh(h.to_dense())
        x = s.to_unit(lam)
        assert np.all(np.abs(x) < 1.0)


class TestLanczos:
    def test_bounds_enclose_spectrum(self, ti_small):
        h, _ = ti_small
        lam = np.linalg.eigvalsh(h.to_dense())
        lo, hi = lanczos_bounds(h, n_iter=60, seed=0)
        assert lo <= lam.min() + 1e-9
        assert hi >= lam.max() - 1e-9

    def test_tighter_than_gershgorin(self, ti_small):
        h, _ = ti_small
        glo, ghi = h.gershgorin_bounds()
        llo, lhi = lanczos_bounds(h, n_iter=60, seed=0)
        assert (lhi - llo) < (ghi - glo)

    def test_scale_keeps_spectrum_inside(self, ti_small):
        h, _ = ti_small
        s = lanczos_scale(h, seed=3)
        lam = np.linalg.eigvalsh(h.to_dense())
        assert np.all(np.abs(s.to_unit(lam)) < 1.0)

    def test_works_with_sell_matrix(self, ti_small):
        h, _ = ti_small
        s = SellMatrix(h, chunk_height=8)
        lo, hi = lanczos_bounds(s, n_iter=40, seed=0)
        assert hi > lo

    def test_reproducible_with_seed(self, ti_small):
        h, _ = ti_small
        assert lanczos_bounds(h, seed=11) == lanczos_bounds(h, seed=11)

    def test_iter_validated(self, ti_small):
        h, _ = ti_small
        with pytest.raises(ValueError):
            lanczos_bounds(h, n_iter=0)

    def test_small_matrix_early_breakdown(self):
        """Lanczos on a tiny matrix terminates via beta ~ 0 gracefully."""
        from repro.sparse.csr import CSRMatrix

        m = CSRMatrix.from_dense(np.diag([1.0, 2.0]))
        lo, hi = lanczos_bounds(m, n_iter=50, seed=0)
        assert lo <= 1.0 and hi >= 2.0
