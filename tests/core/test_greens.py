"""KPM Green functions."""

import numpy as np
import pytest

from repro.core.greens import (
    dos_from_greens,
    greens_function,
    greens_function_energy,
)
from repro.core.moments import compute_dos_moments
from repro.core.reconstruct import reconstruct_dos
from repro.core.scaling import SpectralScale, lanczos_scale
from repro.core.stochastic import make_block_vector


def delta_moments(x0, m):
    return np.cos(np.arange(m) * np.arccos(x0))


@pytest.fixture(scope="module")
def ti_moments():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(6, 6, 3)
    scale = lanczos_scale(h, seed=0)
    blk = make_block_vector(h.n_rows, 32, seed=1)
    mu = compute_dos_moments(h, scale, 128, blk)
    return h, scale, mu


class TestConsistency:
    def test_imaginary_part_is_dos(self, ti_moments):
        """rho(E) = -Im G^+ / pi must equal the direct reconstruction."""
        h, scale, mu = ti_moments
        e = np.linspace(-4, 4, 201)
        _, rho_direct = reconstruct_dos(mu, scale, energies=e)
        rho_g = dos_from_greens(mu, scale, e)
        assert np.allclose(rho_g, rho_direct, atol=1e-10 * rho_direct.max())

    def test_retarded_advanced_conjugate(self, ti_moments):
        """G^-(E) = conj(G^+(E)) for real moments."""
        _, scale, mu = ti_moments
        e = np.linspace(-3, 3, 51)
        gp = greens_function_energy(mu, scale, e, retarded=True)
        gm = greens_function_energy(mu, scale, e, retarded=False)
        assert np.allclose(gm, np.conj(gp), atol=1e-12 * np.abs(gp).max())

    def test_retarded_im_negative(self, ti_moments):
        """Im G^+ <= 0 (spectral positivity under Jackson damping)."""
        _, scale, mu = ti_moments
        e = np.linspace(-4, 4, 201)
        gp = greens_function_energy(mu, scale, e, retarded=True)
        assert np.all(gp.imag <= 1e-9 * np.abs(gp).max())

    def test_single_pole(self):
        """For a delta at x0, Re G^+(x) ~ P 1/(x - x0) far from the pole."""
        mu = delta_moments(0.0, 512)
        x = np.array([0.5, 0.7, -0.6])
        g = greens_function(mu, x, kernel="jackson")
        assert np.allclose(g.real, 1.0 / x, rtol=0.05)

    def test_outside_window_zero(self):
        scale = SpectralScale.from_bounds(-1, 1)
        g = greens_function_energy(
            delta_moments(0.0, 32), scale, np.array([-50.0, 50.0])
        )
        assert np.all(g == 0)


class TestValidation:
    def test_x_range_checked(self):
        with pytest.raises(ValueError):
            greens_function(np.ones(4), np.array([1.0]))

    def test_batched_moments(self):
        mus = np.stack([delta_moments(0.2, 64), delta_moments(-0.3, 64)])
        g = greens_function(mus, np.linspace(-0.9, 0.9, 11))
        assert g.shape == (2, 11)

    def test_kernel_kwargs_forwarded(self):
        mu = delta_moments(0.0, 64)
        soft = greens_function(mu, np.array([0.01]), kernel="lorentz", lam=2.0)
        hard = greens_function(mu, np.array([0.01]), kernel="lorentz", lam=6.0)
        # harder damping broadens the pole -> smaller |Im G| at the peak
        assert abs(hard.imag[0]) < abs(soft.imag[0])
