"""Chebyshev reconstruction: DCT fast path, normalization, positivity."""

import numpy as np
import pytest

from repro.core.damping import jackson_kernel
from repro.core.moments import compute_dos_moments
from repro.core.reconstruct import (
    chebyshev_grid,
    integrate_density,
    reconstruct_chebyshev,
    reconstruct_chebyshev_dct,
    reconstruct_dos,
)
from repro.core.scaling import SpectralScale, lanczos_scale
from repro.core.stochastic import make_block_vector


def delta_moments(x0: float, m_count: int) -> np.ndarray:
    """Moments of a single delta at x0: mu_m = T_m(x0)."""
    return np.cos(np.arange(m_count) * np.arccos(x0))


class TestSeriesEvaluation:
    def test_dct_equals_direct(self):
        mu = delta_moments(0.31, 64)
        x, d_dct = reconstruct_chebyshev_dct(mu, 256, kernel="jackson")
        d_dir = reconstruct_chebyshev(mu, chebyshev_grid(256), kernel="jackson")
        assert np.allclose(x, chebyshev_grid(256))
        assert np.allclose(d_dct, d_dir, atol=1e-10)

    def test_batched_moments(self):
        mus = np.stack([delta_moments(0.1, 32), delta_moments(-0.5, 32)])
        x, d = reconstruct_chebyshev_dct(mus, 64)
        assert d.shape == (2, 64)
        # each row peaks near its own delta position
        assert abs(x[np.argmax(d[0])] - 0.1) < 0.1
        assert abs(x[np.argmax(d[1])] + 0.5) < 0.1

    def test_delta_peak_location_and_mass(self):
        mu = delta_moments(-0.4, 128)
        x, d = reconstruct_chebyshev_dct(mu, 512)
        assert abs(x[np.argmax(d)] + 0.4) < 0.02
        assert np.trapezoid(d, x) == pytest.approx(1.0, abs=0.02)

    def test_jackson_positivity(self):
        mu = delta_moments(0.77, 64)
        _, d = reconstruct_chebyshev_dct(mu, 256, kernel="jackson")
        assert np.all(d > -1e-12)

    def test_dirichlet_shows_gibbs(self):
        """Without damping the truncated series oscillates below zero."""
        mu = delta_moments(0.0, 64)
        _, d = reconstruct_chebyshev_dct(mu, 256, kernel="dirichlet")
        assert d.min() < -1e-3

    def test_points_outside_interval_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_chebyshev(np.ones(4), np.array([1.0]))

    def test_dct_needs_enough_points(self):
        with pytest.raises(ValueError):
            reconstruct_chebyshev_dct(np.ones(64), 32)

    def test_grid_ascending(self):
        x = chebyshev_grid(100)
        assert np.all(np.diff(x) > 0)
        assert -1 < x[0] < x[-1] < 1


class TestDosReconstruction:
    def test_integral_equals_dimension(self, ti_small):
        h, _ = ti_small
        scale = lanczos_scale(h, seed=0)
        blk = make_block_vector(h.n_rows, 32, seed=1)
        mu = compute_dos_moments(h, scale, 128, blk)
        e, rho = reconstruct_dos(mu, scale, n_points=512)
        total = integrate_density(e, rho)
        assert total == pytest.approx(h.n_rows, rel=0.03)

    def test_energy_mapping(self):
        scale = SpectralScale.from_bounds(-5.0, 5.0)
        mu = delta_moments(0.0, 64)  # delta at E = 0
        e, rho = reconstruct_dos(mu, scale, n_points=256)
        assert abs(e[np.argmax(rho)]) < 0.2

    def test_explicit_energies(self):
        scale = SpectralScale.from_bounds(-2.0, 2.0)
        mu = delta_moments(0.0, 64)
        energies = np.linspace(-1, 1, 51)
        e, rho = reconstruct_dos(mu, scale, energies=energies)
        assert np.array_equal(e, energies)
        assert rho.shape == energies.shape

    def test_energies_outside_window_zero(self):
        scale = SpectralScale.from_bounds(-1.0, 1.0)
        mu = delta_moments(0.0, 32)
        energies = np.array([-99.0, 0.0, 99.0])
        _, rho = reconstruct_dos(mu, scale, energies=energies)
        assert rho[0] == 0.0 and rho[2] == 0.0 and rho[1] > 0

    def test_use_dct_with_energies_rejected(self):
        scale = SpectralScale.from_bounds(-1.0, 1.0)
        with pytest.raises(ValueError):
            reconstruct_dos(
                np.ones(8), scale, energies=np.array([0.0]), use_dct=True
            )

    def test_direct_path_matches_dct_path(self):
        scale = SpectralScale.from_bounds(-3.0, 1.0)
        mu = delta_moments(0.25, 48)
        e1, r1 = reconstruct_dos(mu, scale, n_points=128, use_dct=True)
        e2, r2 = reconstruct_dos(mu, scale, n_points=128, use_dct=False)
        assert np.allclose(e1, e2)
        assert np.allclose(r1, r2, atol=1e-9)


class TestIntegration:
    def test_integrate_subinterval(self):
        e = np.linspace(0, 1, 101)
        rho = np.ones_like(e)
        assert integrate_density(e, rho, 0.25, 0.75) == pytest.approx(0.5, abs=0.02)

    def test_empty_interval(self):
        e = np.linspace(0, 1, 11)
        assert integrate_density(e, np.ones_like(e), 0.5, 0.5001) == 0.0

    def test_reversed_interval_rejected(self):
        e = np.linspace(0, 1, 11)
        with pytest.raises(ValueError):
            integrate_density(e, np.ones_like(e), 0.8, 0.2)
