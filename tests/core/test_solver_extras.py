"""Solver facade options not covered by the main solver tests."""

import numpy as np
import pytest

from repro.core.solver import KPMSolver
from repro.physics import build_topological_insulator


@pytest.fixture(scope="module")
def system():
    h, model = build_topological_insulator(5, 5, 3)
    return h, model


class TestDosOptions:
    def test_explicit_energies(self, system):
        h, _ = system
        s = KPMSolver(h, n_moments=64, n_vectors=2, seed=0)
        e = np.linspace(-2, 2, 33)
        res = s.dos(energies=e)
        assert np.array_equal(res.energies, e)
        assert res.rho.shape == e.shape

    def test_n_points_override(self, system):
        h, _ = system
        s = KPMSolver(h, n_moments=64, n_vectors=2, seed=0)
        res = s.dos(n_points=200)
        assert res.energies.shape == (200,)

    def test_vector_kind_option(self, system):
        h, _ = system
        for kind in ("phase", "rademacher", "gaussian"):
            s = KPMSolver(
                h, n_moments=32, n_vectors=4, seed=0, vector_kind=kind
            )
            res = s.dos()
            assert np.all(np.isfinite(res.rho))

    def test_explicit_scale_used(self, system):
        from repro.core.scaling import SpectralScale

        h, _ = system
        scale = SpectralScale.from_bounds(-10, 10)
        s = KPMSolver(h, n_moments=16, n_vectors=1, scale=scale, seed=0)
        assert s.scale is scale

    def test_dimension_property(self, system):
        h, _ = system
        assert KPMSolver(h, n_moments=16, n_vectors=1, seed=0).dimension \
            == h.n_rows


class TestLdosOptions:
    def test_ldos_explicit_energies(self, system):
        h, _ = system
        s = KPMSolver(h, n_moments=32, n_vectors=1, seed=0)
        e = np.linspace(-1, 1, 11)
        res = s.ldos(np.array([0, 1]), energies=e, exact=True)
        assert res.rho.shape == (2, 11)

    def test_ldos_rows_preserved(self, system):
        h, _ = system
        s = KPMSolver(h, n_moments=32, n_vectors=1, seed=0)
        rows = np.array([7, 3])
        res = s.ldos(rows, exact=True)
        assert np.array_equal(res.rows, rows)


class TestSpectralFunctionOptions:
    def test_orbital_subset(self, system):
        h, model = system
        s = KPMSolver(h, n_moments=64, n_vectors=1, seed=0)
        res = s.spectral_function(
            model.lattice, [(0, 0, 0)], orbitals=[0, 1]
        )
        total = np.trapezoid(res.a_ke[0], res.energies)
        assert total == pytest.approx(2.0, rel=0.1)  # two orbitals

    def test_k_points_recorded(self, system):
        h, model = system
        s = KPMSolver(h, n_moments=32, n_vectors=1, seed=0)
        ks = [(0, 0, 0), (0.5, 0, 0)]
        res = s.spectral_function(model.lattice, ks)
        assert res.k_points == ks
