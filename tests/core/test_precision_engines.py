"""End-to-end behaviour of the precision profiles in the moment engines.

Covers: reduced-profile eta accuracy against the fp64 reference,
native/numpy cross-backend parity per profile, exact byte accounting
under compressed indices, the documented fp16v exclusions, and the
checkpoint contract (bit-exact same-precision resume, refused
cross-precision resume).
"""

import numpy as np
import pytest

from repro.core.checkpoint import KpmCheckpoint, checkpointed_eta
from repro.core.moments import compute_eta
from repro.core.scaling import lanczos_scale
from repro.core.solver import KPMSolver
from repro.core.stochastic import ldos_moments, make_block_vector
from repro.perf.report import expected_counters
from repro.sparse.backend.native import native_available
from repro.util.counters import PerfCounters
from repro.util.errors import CheckpointError
from repro.util.precision import FP16V, get_precision

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

BACKENDS = ["numpy", pytest.param("native", marks=needs_native)]

#: eta relative-error budgets (same rationale as tools/check_accuracy.py)
ETA_BUDGET = {"fp32": 1e-4, "fp16v": 5e-2}


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(5, 5, 3)
    scale = lanczos_scale(h, seed=0)
    blk = make_block_vector(h.n_rows, 3, seed=1)
    ref = compute_eta(h, scale, 32, blk, "aug_spmmv")
    return h, scale, blk, ref


def _rel_err(a, b):
    return float(np.max(np.abs(a - b)) / np.max(np.abs(b)))


class TestEngineAccuracy:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ["naive", "aug_spmv", "aug_spmmv"])
    @pytest.mark.parametrize("precision", ["fp32", "fp16v"])
    def test_reduced_profiles_track_fp64(self, system, backend, engine,
                                         precision):
        h, scale, blk, ref = system
        eta = compute_eta(h, scale, 32, blk, engine, backend=backend,
                          precision=precision)
        assert eta.dtype == np.complex128  # moments always accumulate wide
        assert _rel_err(eta, ref) < ETA_BUDGET[precision]

    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_fp64_path_is_bitwise_baseline(self, system, precision):
        """precision=None and precision='fp64' are the same code path."""
        h, scale, blk, ref = system
        if precision == "fp64":
            eta = compute_eta(h, scale, 32, blk, "aug_spmmv",
                              precision="fp64")
            assert np.array_equal(eta, ref)
        else:
            a = compute_eta(h, scale, 32, blk, "aug_spmmv", precision="fp32")
            b = compute_eta(h, scale, 32, blk, "aug_spmmv", precision="fp32")
            assert np.array_equal(a, b)  # deterministic per profile

    @pytest.mark.parametrize("precision", ["fp32", "fp16v"])
    @needs_native
    def test_native_numpy_parity(self, system, precision):
        """Both backends implement the same storage contract."""
        h, scale, blk, _ = system
        a = compute_eta(h, scale, 32, blk, "aug_spmmv", backend="numpy",
                        precision=precision)
        b = compute_eta(h, scale, 32, blk, "aug_spmmv", backend="native",
                        precision=precision)
        # same storage rounding, different reduction order only
        assert _rel_err(a, b) < 1e-5

    @pytest.mark.parametrize("precision", ["fp64", "fp32", "fp16v"])
    def test_counters_match_model(self, system, precision):
        """Charged bytes equal the closed-form recharge (uint16 S_i)."""
        h, scale, blk, _ = system
        c = PerfCounters()
        compute_eta(h, scale, 32, blk, "aug_spmmv", c, precision=precision)
        exp = expected_counters(h, 32, 3, "aug_spmmv", precision=precision)
        assert (c.bytes_loaded, c.bytes_stored, c.flops) == (
            exp.bytes_loaded, exp.bytes_stored, exp.flops)

    def test_mismatched_block_dtype_rejected(self, system):
        h, scale, blk, _ = system
        half = FP16V.encode(blk)
        with pytest.raises(TypeError, match="fp16v"):
            compute_eta(h, scale, 32, half, "aug_spmmv", precision="fp32")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ldos_fp16v_decode_pass(self, system, backend):
        """The decode pass lifts the old fp16v exclusion from LDOS."""
        h, scale, blk, _ = system
        rows = np.array([0, 7, 31])
        ref = ldos_moments(h, scale, 16, blk, rows, backend=backend,
                           precision="fp32")
        out = ldos_moments(h, scale, 16, blk, rows, backend=backend,
                           precision="fp16v")
        assert out.shape == ref.shape
        err = np.max(np.abs(out - ref)) / max(np.max(np.abs(ref)), 1e-30)
        assert err < ETA_BUDGET["fp16v"]


class TestCheckpointPrecision:
    def test_fp32_resume_is_bit_exact(self, system, tmp_path):
        h, scale, blk, _ = system
        ck = tmp_path / "state.npz"
        full = checkpointed_eta(h, scale, 32, blk, checkpoint_every=5,
                                checkpoint_path=ck, precision="fp32")
        resumed = checkpointed_eta(h, scale, 32, blk, resume_from=ck,
                                   precision="fp32")
        assert np.array_equal(resumed, full)
        # the file really stores the narrow profile, not a widened copy
        loaded = KpmCheckpoint.load(ck)
        assert loaded.precision == "fp32"
        assert loaded.v.dtype == np.complex64

    def test_fp16v_checkpoint_stores_pairs(self, system, tmp_path):
        h, scale, blk, _ = system
        ck = tmp_path / "state.npz"
        full = checkpointed_eta(h, scale, 32, blk, checkpoint_every=5,
                                checkpoint_path=ck, precision="fp16v")
        loaded = KpmCheckpoint.load(ck)
        assert loaded.precision == "fp16v"
        assert loaded.v.dtype == np.float16 and loaded.v.shape[-1] == 2
        resumed = checkpointed_eta(h, scale, 32, blk, resume_from=ck,
                                   precision="fp16v")
        assert np.array_equal(resumed, full)

    @pytest.mark.parametrize("saved,resumed", [
        ("fp32", "fp64"), ("fp64", "fp32"), ("fp16v", "fp32"),
    ])
    def test_cross_precision_resume_refused(self, system, tmp_path,
                                            saved, resumed):
        h, scale, blk, _ = system
        ck = tmp_path / "state.npz"
        checkpointed_eta(h, scale, 32, blk, checkpoint_every=5,
                         checkpoint_path=ck, precision=saved)
        with pytest.raises(CheckpointError, match="precision"):
            checkpointed_eta(h, scale, 32, blk, resume_from=ck,
                             precision=resumed)


class TestSolverPrecision:
    def test_solver_threads_precision(self):
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(5, 5, 3)
        ref = KPMSolver(h, n_moments=64, n_vectors=2, seed=3).dos(
            n_points=256)
        sol = KPMSolver(h, n_moments=64, n_vectors=2, seed=3,
                        precision="fp32")
        assert sol.precision is get_precision("fp32")
        res = sol.dos(n_points=256)
        peak = np.max(np.abs(ref.rho))
        assert np.max(np.abs(res.rho - ref.rho)) / peak < 1e-4
        assert np.array_equal(res.energies, ref.energies)

    def test_solver_rejects_unknown_profile(self):
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 3)
        with pytest.raises(ValueError, match="unknown precision"):
            KPMSolver(h, precision="bf16")
