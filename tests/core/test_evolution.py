"""Chebyshev time evolution."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core.evolution import (
    autocorrelation,
    chebyshev_expansion_order,
    evolve,
)
from repro.core.scaling import lanczos_scale
from repro.sparse.sell import SellMatrix
from repro.util.counters import PerfCounters


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(4, 4, 3)
    scale = lanczos_scale(h, seed=0)
    rng = np.random.default_rng(7)
    psi0 = rng.normal(size=h.n_rows) + 1j * rng.normal(size=h.n_rows)
    psi0 /= np.linalg.norm(psi0)
    return h, scale, psi0, h.to_dense()


class TestAgainstDenseExpm:
    @pytest.mark.parametrize("t", [0.0, 0.3, 2.0, 7.5])
    def test_forward(self, system, t):
        h, scale, psi0, dense = system
        ref = expm(-1j * dense * t) @ psi0
        assert np.allclose(evolve(h, scale, psi0, t), ref, atol=1e-10)

    def test_backward(self, system):
        h, scale, psi0, dense = system
        ref = expm(1j * dense * 1.7) @ psi0
        assert np.allclose(evolve(h, scale, psi0, -1.7), ref, atol=1e-10)

    def test_blocked_equals_columnwise(self, system):
        h, scale, psi0, dense = system
        block = np.ascontiguousarray(
            np.column_stack([psi0, np.roll(psi0, 5), psi0 * 1j])
        )
        out = evolve(h, scale, block, 2.2)
        for j in range(3):
            single = evolve(h, scale, block[:, j].copy(), 2.2)
            assert np.allclose(out[:, j], single, atol=1e-12)

    def test_sell_backend(self, system):
        h, scale, psi0, dense = system
        s = SellMatrix(h, chunk_height=16, sigma=32)
        assert np.allclose(
            evolve(s, scale, psi0, 1.0), evolve(h, scale, psi0, 1.0),
            atol=1e-12,
        )


class TestUnitarity:
    def test_norm_conserved(self, system):
        h, scale, psi0, _ = system
        for t in (0.1, 1.0, 10.0, 50.0):
            assert np.linalg.norm(evolve(h, scale, psi0, t)) == pytest.approx(
                1.0, abs=1e-10
            )

    def test_composition(self, system):
        """U(t1) U(t2) = U(t1 + t2)."""
        h, scale, psi0, _ = system
        a = evolve(h, scale, evolve(h, scale, psi0, 1.3), 0.9)
        b = evolve(h, scale, psi0, 2.2)
        assert np.allclose(a, b, atol=1e-10)

    def test_inverse(self, system):
        h, scale, psi0, _ = system
        back = evolve(h, scale, evolve(h, scale, psi0, 3.0), -3.0)
        assert np.allclose(back, psi0, atol=1e-10)


class TestExpansionOrder:
    def test_grows_with_tau(self):
        assert chebyshev_expansion_order(100.0) > chebyshev_expansion_order(1.0)

    def test_minimum(self):
        assert chebyshev_expansion_order(0.0) >= 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_expansion_order(-1.0)

    def test_truncated_order_loses_accuracy(self, system):
        h, scale, psi0, dense = system
        ref = expm(-1j * dense * 5.0) @ psi0
        good = evolve(h, scale, psi0, 5.0)
        bad = evolve(h, scale, psi0, 5.0, order=5)
        assert np.abs(good - ref).max() < 1e-10
        assert np.abs(bad - ref).max() > 1e-3


class TestAutocorrelation:
    def test_c0_is_one(self, system):
        h, scale, psi0, _ = system
        c = autocorrelation(h, scale, psi0, np.array([0.0]))
        assert c[0] == pytest.approx(1.0)

    def test_matches_dense(self, system):
        h, scale, psi0, dense = system
        times = np.array([0.5, 1.5])
        c = autocorrelation(h, scale, psi0, times)
        for t, ci in zip(times, c):
            ref = np.vdot(psi0, expm(-1j * dense * t) @ psi0)
            assert ci == pytest.approx(ref, abs=1e-10)

    def test_modulus_bounded(self, system):
        h, scale, psi0, _ = system
        c = autocorrelation(h, scale, psi0, np.linspace(0, 5, 6))
        assert np.all(np.abs(c) <= 1.0 + 1e-10)


class TestAccounting:
    def test_counters_charged(self, system):
        h, scale, psi0, _ = system
        c = PerfCounters()
        evolve(h, scale, psi0, 2.0, counters=c)
        assert c.calls.get("spmmv", 0) >= chebyshev_expansion_order(
            2.0 / scale.a
        ) - 2

    def test_shape_mismatch(self, system):
        h, scale, psi0, _ = system
        with pytest.raises(ValueError):
            evolve(h, scale, psi0[:-1].copy(), 1.0)
