"""Checkpoint/restart of the stage-2 moment computation."""

import numpy as np
import pytest

from repro.core.checkpoint import KpmCheckpoint, checkpointed_eta
from repro.core.moments import compute_eta
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.util.errors import FormatError


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(5, 5, 3)
    scale = lanczos_scale(h, seed=0)
    blk = make_block_vector(h.n_rows, 3, seed=1)
    ref = compute_eta(h, scale, 32, blk, "aug_spmmv")
    return h, scale, blk, ref


class TestEquivalence:
    def test_no_checkpointing_matches_engine(self, system):
        h, scale, blk, ref = system
        eta = checkpointed_eta(h, scale, 32, blk)
        assert np.allclose(eta, ref, atol=0)

    def test_resume_is_bit_exact(self, system, tmp_path):
        h, scale, blk, ref = system
        ck_path = tmp_path / "state.npz"
        # run to completion with periodic checkpoints; the last checkpoint
        # freezes the state a few iterations before the end
        full = checkpointed_eta(
            h, scale, 32, blk, checkpoint_every=5, checkpoint_path=ck_path
        )
        assert np.allclose(full, ref, atol=0)
        # resume from the saved state and finish again
        resumed = checkpointed_eta(
            h, scale, 32, blk, resume_from=ck_path
        )
        assert np.array_equal(resumed[:, -2:], full[:, -2:])
        assert np.allclose(resumed, ref, atol=0)

    def test_roundtrip_object(self, system, tmp_path):
        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=3, checkpoint_path=p
        )
        ck = KpmCheckpoint.load(p)
        assert ck.n_moments == 16
        assert ck.v.shape == blk.shape
        ck.save(tmp_path / "s2.npz")
        ck2 = KpmCheckpoint.load(tmp_path / "s2.npz")
        assert np.array_equal(ck.v, ck2.v)
        assert ck.next_m == ck2.next_m


class TestValidation:
    def test_moment_count_mismatch(self, system, tmp_path):
        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=2, checkpoint_path=p
        )
        with pytest.raises(FormatError, match="M="):
            checkpointed_eta(h, scale, 32, blk, resume_from=p)

    def test_scale_mismatch(self, system, tmp_path):
        from repro.core.scaling import SpectralScale

        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=2, checkpoint_path=p
        )
        other = SpectralScale.from_bounds(-100, 100)
        with pytest.raises(FormatError, match="spectral map"):
            checkpointed_eta(h, other, 16, blk, resume_from=p)

    def test_checkpoint_needs_path(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError):
            checkpointed_eta(h, scale, 16, blk, checkpoint_every=2)

    def test_odd_moments_rejected(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError):
            checkpointed_eta(h, scale, 15, blk)

    def test_version_guard(self, system, tmp_path):
        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=2, checkpoint_path=p
        )
        # corrupt the version field
        with np.load(p) as data:
            bad = {k: data[k] for k in data.files}
        bad["version"] = np.array(99)
        np.savez_compressed(p, **bad)
        with pytest.raises(FormatError, match="version"):
            KpmCheckpoint.load(p)
