"""Checkpoint/restart of the stage-2 moment computation."""

import numpy as np
import pytest

from repro.core.checkpoint import KpmCheckpoint, checkpointed_eta
from repro.core.moments import compute_eta
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.sparse.backend.native import native_available
from repro.util.errors import CheckpointError, FormatError

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

BACKENDS = ["numpy", pytest.param("native", marks=needs_native)]


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(5, 5, 3)
    scale = lanczos_scale(h, seed=0)
    blk = make_block_vector(h.n_rows, 3, seed=1)
    ref = compute_eta(h, scale, 32, blk, "aug_spmmv")
    return h, scale, blk, ref


class TestEquivalence:
    def test_no_checkpointing_matches_engine(self, system):
        h, scale, blk, ref = system
        eta = checkpointed_eta(h, scale, 32, blk)
        assert np.allclose(eta, ref, atol=0)

    def test_resume_is_bit_exact(self, system, tmp_path):
        h, scale, blk, ref = system
        ck_path = tmp_path / "state.npz"
        # run to completion with periodic checkpoints; the last checkpoint
        # freezes the state a few iterations before the end
        full = checkpointed_eta(
            h, scale, 32, blk, checkpoint_every=5, checkpoint_path=ck_path
        )
        assert np.allclose(full, ref, atol=0)
        # resume from the saved state and finish again
        resumed = checkpointed_eta(
            h, scale, 32, blk, resume_from=ck_path
        )
        assert np.array_equal(resumed[:, -2:], full[:, -2:])
        assert np.allclose(resumed, ref, atol=0)

    def test_ckpt_suffix_round_trip(self, system, tmp_path):
        """Regression: save('state.ckpt') must be loadable by the same name.

        ``np.savez_compressed`` silently appends ``.npz`` to any other
        suffix; save/load used to normalize differently, so a non-.npz
        checkpoint path saved fine but could never be loaded back.
        """
        h, scale, blk, _ = system
        p = tmp_path / "state.ckpt"
        full = checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=3, checkpoint_path=p
        )
        ck = KpmCheckpoint.load(p)  # the path the user passed
        assert ck.n_moments == 16
        on_disk = ck.save(p)
        assert on_disk.suffix == ".npz"
        resumed = checkpointed_eta(h, scale, 16, blk, resume_from=p)
        assert np.array_equal(resumed[:, : 2 * ck.next_m],
                              full[:, : 2 * ck.next_m])

    def test_roundtrip_object(self, system, tmp_path):
        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=3, checkpoint_path=p
        )
        ck = KpmCheckpoint.load(p)
        assert ck.n_moments == 16
        assert ck.v.shape == blk.shape
        ck.save(tmp_path / "s2.npz")
        ck2 = KpmCheckpoint.load(tmp_path / "s2.npz")
        assert np.array_equal(ck.v, ck2.v)
        assert ck.next_m == ck2.next_m


class TestResumeMidRun:
    """Interrupt in the middle of the loop; resume must be bit-exact."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resume_bitwise_per_backend(self, system, tmp_path, backend):
        h, scale, blk, _ = system
        p = tmp_path / "mid.npz"
        # checkpoint_every=4 over 15 iterations: the last saved state sits
        # at next_m=13, three iterations short of completion
        full = checkpointed_eta(
            h, scale, 32, blk, checkpoint_every=4, checkpoint_path=p,
            backend=backend,
        )
        ck = KpmCheckpoint.load(p)
        assert 1 < ck.next_m < 16  # genuinely mid-run
        resumed = checkpointed_eta(
            h, scale, 32, blk, resume_from=ck, backend=backend
        )
        # same backend, same state, deterministic recurrence: bitwise
        assert np.array_equal(resumed, full)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_engine_per_backend(self, system, backend):
        h, scale, blk, _ = system
        eta = checkpointed_eta(h, scale, 32, blk, backend=backend)
        ref = compute_eta(h, scale, 32, blk, "aug_spmmv", backend=backend)
        assert np.array_equal(eta, ref)

    @needs_native
    def test_cross_backend_resume(self, system, tmp_path):
        """A checkpoint is backend-agnostic: save numpy, resume native."""
        h, scale, blk, _ = system
        p = tmp_path / "mid.npz"
        full = checkpointed_eta(
            h, scale, 32, blk, checkpoint_every=4, checkpoint_path=p,
            backend="numpy",
        )
        resumed = checkpointed_eta(
            h, scale, 32, blk, resume_from=p, backend="native"
        )
        # prefix up to the interruption point is carried over verbatim;
        # the remainder agrees to reduction-order tolerance
        ck = KpmCheckpoint.load(p)
        assert np.array_equal(resumed[:, : 2 * ck.next_m],
                              full[:, : 2 * ck.next_m])
        assert np.allclose(resumed, full, atol=1e-9)

    @pytest.mark.parametrize("dist_engine", ["sim", "mp"])
    def test_matches_distributed_engines(self, system, dist_engine):
        """Resumed serial moments equal the sim/mp distributed runs."""
        from repro.dist.comm import SimWorld
        from repro.dist.kpm_parallel import distributed_eta
        from repro.dist.mp import MpWorld
        from repro.dist.partition import RowPartition

        h, scale, blk, _ = system
        eta_ck = checkpointed_eta(h, scale, 32, blk)
        part = RowPartition.equal(h.n_rows, 2, align=4)
        world = MpWorld(2) if dist_engine == "mp" else SimWorld(2)
        eta_dist = distributed_eta(h, part, scale, 32, blk, world)
        assert np.allclose(eta_dist, eta_ck, atol=1e-9)


class TestValidation:
    def test_moment_count_mismatch(self, system, tmp_path):
        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=2, checkpoint_path=p
        )
        with pytest.raises(FormatError, match="M="):
            checkpointed_eta(h, scale, 32, blk, resume_from=p)

    def test_scale_mismatch(self, system, tmp_path):
        from repro.core.scaling import SpectralScale

        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=2, checkpoint_path=p
        )
        other = SpectralScale.from_bounds(-100, 100)
        with pytest.raises(FormatError, match="spectral map"):
            checkpointed_eta(h, other, 16, blk, resume_from=p)

    def test_checkpoint_needs_path(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError):
            checkpointed_eta(h, scale, 16, blk, checkpoint_every=2)

    def test_odd_moments_rejected(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError):
            checkpointed_eta(h, scale, 15, blk)

    def test_version_guard(self, system, tmp_path):
        h, scale, blk, _ = system
        p = tmp_path / "s.npz"
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=2, checkpoint_path=p
        )
        # corrupt the version field
        with np.load(p) as data:
            bad = {k: data[k] for k in data.files}
        bad["version"] = np.array(99)
        np.savez_compressed(p, **bad)
        with pytest.raises(FormatError, match="version"):
            KpmCheckpoint.load(p)


class TestIntegrity:
    """Atomic writes and loud failures on damaged checkpoints."""

    def _save_one(self, system, path):
        h, scale, blk, _ = system
        checkpointed_eta(
            h, scale, 16, blk, checkpoint_every=3, checkpoint_path=path
        )
        return path if path.suffix == ".npz" else path.with_name(
            path.name + ".npz"
        )

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            KpmCheckpoint.load(tmp_path / "nope.npz")

    def test_truncated_file_raises_checkpoint_error(self, system, tmp_path):
        p = self._save_one(system, tmp_path / "s.npz")
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            KpmCheckpoint.load(p)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        p = tmp_path / "junk.npz"
        p.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError):
            KpmCheckpoint.load(p)

    def test_digest_detects_bit_flip(self, system, tmp_path):
        """A state mutation that keeps the zip intact still fails loudly."""
        p = self._save_one(system, tmp_path / "s.npz")
        ck = KpmCheckpoint.load(p)
        ck.v[0, 0] += 1.0  # silent data corruption
        np.savez_compressed(
            p, version=1, v=ck.v, w=ck.w, eta=ck.eta, next_m=ck.next_m,
            n_moments=ck.n_moments, a=ck.a, b=ck.b,
            digest="0" * 64,  # stale digest from "before" the flip
        )
        with pytest.raises(CheckpointError, match="integrity"):
            KpmCheckpoint.load(p)

    def test_corruption_drill_helper(self, system, tmp_path):
        from repro.resil import corrupt_checkpoint_file

        p = self._save_one(system, tmp_path / "s.npz")
        assert corrupt_checkpoint_file(p, seed=3)
        with pytest.raises(CheckpointError):
            KpmCheckpoint.load(p)
        assert not corrupt_checkpoint_file(tmp_path / "absent.npz")

    def test_atomic_write_leaves_no_temp_files(self, system, tmp_path):
        self._save_one(system, tmp_path / "s.npz")
        leftovers = [f.name for f in tmp_path.iterdir() if "tmp" in f.name]
        assert leftovers == []
        assert (tmp_path / "s.npz").exists()

    def test_save_replaces_previous_atomically(self, system, tmp_path):
        """Re-saving over an existing checkpoint keeps it loadable."""
        p = self._save_one(system, tmp_path / "s.npz")
        ck = KpmCheckpoint.load(p)
        ck.save(p)
        again = KpmCheckpoint.load(p)
        assert np.array_equal(again.v, ck.v)
        assert again.next_m == ck.next_m
