"""Moment engines: stage equivalence and agreement with dense Chebyshev."""

import numpy as np
import pytest

from repro.core.moments import (
    MomentEngine,
    compute_dos_moments,
    compute_eta,
    eta_to_moments,
)
from repro.core.scaling import SpectralScale, lanczos_scale
from repro.core.stochastic import make_block_vector, unit_block_vector
from repro.sparse.sell import SellMatrix
from repro.util.counters import PerfCounters


@pytest.fixture
def system(ti_small):
    h, _ = ti_small
    return h, lanczos_scale(h, seed=1)


def dense_chebyshev_moments(dense, scale, m_count, start):
    """Reference: mu_m = <v0| T_m(H~) |v0> via the dense recurrence."""
    ht = scale.a * (dense - scale.b * np.eye(dense.shape[0]))
    v0 = start
    v_prev = v0.copy()
    v_cur = ht @ v0
    mus = [np.vdot(v0, v_prev), np.vdot(v0, v_cur)]
    for _ in range(2, m_count):
        v_next = 2 * ht @ v_cur - v_prev
        v_prev, v_cur = v_cur, v_next
        mus.append(np.vdot(v0, v_cur))
    return np.array(mus)


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ["naive", "aug_spmv", "aug_spmmv"])
    def test_engines_match(self, system, engine):
        h, scale = system
        blk = make_block_vector(h.n_rows, 3, seed=4)
        ref = compute_eta(h, scale, 32, blk, MomentEngine.NAIVE)
        eta = compute_eta(h, scale, 32, blk, engine)
        assert np.allclose(eta, ref, atol=1e-9)

    def test_sell_matches_csr(self, system):
        h, scale = system
        s = SellMatrix(h, chunk_height=16, sigma=32)
        blk = make_block_vector(h.n_rows, 2, seed=4)
        assert np.allclose(
            compute_eta(h, scale, 16, blk, "aug_spmmv"),
            compute_eta(s, scale, 16, blk, "aug_spmmv"),
            atol=1e-9,
        )

    def test_engine_enum_accepts_strings(self, system):
        h, scale = system
        blk = make_block_vector(h.n_rows, 1, seed=0)
        compute_eta(h, scale, 4, blk, "naive")
        with pytest.raises(ValueError):
            compute_eta(h, scale, 4, blk, "warp_speed")

    def test_start_block_not_modified(self, system):
        h, scale = system
        blk = make_block_vector(h.n_rows, 2, seed=4)
        before = blk.copy()
        compute_eta(h, scale, 8, blk, "aug_spmmv")
        assert np.array_equal(blk, before)


class TestAgainstDense:
    def test_eta_to_moments_vs_dense_recurrence(self, system):
        h, scale = system
        dense = h.to_dense()
        m_count = 24
        blk = make_block_vector(h.n_rows, 1, seed=9)
        eta = compute_eta(h, scale, m_count, blk, "aug_spmmv")
        mu = eta_to_moments(eta)[0]
        ref = dense_chebyshev_moments(dense, scale, m_count, blk[:, 0])
        assert np.allclose(mu, ref, atol=1e-7)

    def test_trace_moments_unbiased(self, system):
        """mu_m averaged over many vectors approaches tr T_m(H~)."""
        h, scale = system
        dense = h.to_dense()
        n = h.n_rows
        m_count = 8
        blk = make_block_vector(n, 128, seed=2)
        mu = compute_dos_moments(h, scale, m_count, blk)
        # dense trace reference
        ht = scale.a * (dense - scale.b * np.eye(n))
        t_prev, t_cur = np.eye(n), ht.copy()
        refs = [n, np.trace(t_cur).real]
        for _ in range(2, m_count):
            t_next = 2 * ht @ t_cur - t_prev
            t_prev, t_cur = t_cur, t_next
            refs.append(np.trace(t_cur).real)
        assert np.allclose(mu, refs, atol=0.12 * n)

    def test_exact_trace_with_unit_vectors(self, system):
        """Using ALL unit vectors makes the 'stochastic' trace exact."""
        h, scale = system
        n = h.n_rows
        blk = unit_block_vector(n, np.arange(n))
        mu = compute_dos_moments(h, scale, 8, blk) * n  # mean -> sum
        dense = h.to_dense()
        ht = scale.a * (dense - scale.b * np.eye(n))
        t_prev, t_cur = np.eye(n), ht.copy()
        refs = [n, np.trace(t_cur).real]
        for _ in range(2, 8):
            t_next = 2 * ht @ t_cur - t_prev
            t_prev, t_cur = t_cur, t_next
            refs.append(np.trace(t_cur).real)
        assert np.allclose(mu, refs, atol=1e-6)


class TestInvariants:
    def test_mu0_equals_n_for_phase_vectors(self, system):
        h, scale = system
        blk = make_block_vector(h.n_rows, 4, kind="phase", seed=1)
        eta = compute_eta(h, scale, 8, blk)
        assert np.allclose(eta[:, 0].real, h.n_rows)

    def test_even_moments_real(self, system):
        h, scale = system
        blk = make_block_vector(h.n_rows, 2, seed=5)
        eta = compute_eta(h, scale, 16, blk)
        assert np.allclose(eta[:, 0::2].imag, 0, atol=1e-9)

    def test_even_eta_nonnegative(self, system):
        """eta_2m = <nu_m|nu_m> is a squared norm."""
        h, scale = system
        blk = make_block_vector(h.n_rows, 2, seed=5)
        eta = compute_eta(h, scale, 16, blk)
        assert np.all(eta[:, 0::2].real > 0)

    def test_odd_m_rejected(self, system):
        h, scale = system
        blk = make_block_vector(h.n_rows, 1, seed=0)
        with pytest.raises(ValueError, match="even"):
            compute_eta(h, scale, 7, blk)

    def test_eta_to_moments_identity(self):
        eta = np.array([5.0, 1.0, 2.0, 0.5, 3.0, 0.25])
        mu = eta_to_moments(eta)
        assert mu[0] == 5.0 and mu[1] == 1.0
        assert mu[2] == 2 * 2.0 - 5.0
        assert mu[3] == 2 * 0.5 - 1.0
        assert mu[4] == 2 * 3.0 - 5.0
        assert mu[5] == 2 * 0.25 - 1.0

    def test_counters_charged(self, system):
        h, scale = system
        blk = make_block_vector(h.n_rows, 2, seed=1)
        c = PerfCounters()
        compute_eta(h, scale, 8, blk, "aug_spmmv", counters=c)
        # M/2 - 1 fused iterations plus the nu_1 init spmmv
        assert c.calls.get("aug_spmmv") == 3
        assert c.calls.get("spmmv") == 1
