"""Search-driven configuration tuning (``repro.dist.tune``)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dist.tune import (
    DEFAULT_CONFIG,
    TuneConfig,
    TuneSpace,
    lookup,
    machine_signature,
    matrix_signature,
    measure,
    model_cost,
    profile_key,
    save_profile,
    tune,
)
from repro.physics import build_topological_insulator


@pytest.fixture(scope="module")
def ti():
    h, _ = build_topological_insulator(4, 4, 4)
    return h


class TestTuneConfig:
    def test_default_is_untuned_serial(self):
        assert DEFAULT_CONFIG.workers == 1
        assert DEFAULT_CONFIG.fmt == "csr"
        assert DEFAULT_CONFIG.threads is None
        assert DEFAULT_CONFIG.precision == "fp64"

    def test_validation(self):
        with pytest.raises(ValueError):
            TuneConfig(fmt="coo")
        with pytest.raises(ValueError):
            TuneConfig(engine="mpi")
        with pytest.raises(ValueError):
            TuneConfig(overlap="maybe")
        with pytest.raises(ValueError):
            TuneConfig(threads=0)
        with pytest.raises(ValueError):
            TuneConfig(chunk=32, sigma=48)  # not a multiple of C
        with pytest.raises(ValueError):
            TuneConfig(workers=2, weights=(1.0,))  # wrong arity

    def test_dict_roundtrip(self):
        cfg = TuneConfig(fmt="sell", chunk=8, sigma=32, workers=2,
                         weights=(0.3, 0.7), threads=4)
        assert TuneConfig.from_dict(cfg.to_dict()) == cfg
        # to_dict is JSON-clean
        json.dumps(cfg.to_dict())


class TestTuneSpace:
    def test_samples_are_always_valid(self):
        space = TuneSpace(sigmas=(1, 48), weights=(None, (0.5, 0.5)))
        rng = np.random.default_rng(7)
        for _ in range(100):
            cfg = space.sample(rng)  # __post_init__ validates
            assert cfg.fmt in ("csr", "sell")

    def test_neighbors_mutate_one_knob(self):
        space = TuneSpace()
        for n in space.neighbors(DEFAULT_CONFIG):
            assert n != DEFAULT_CONFIG
        # the sequential default has a threaded neighbor
        assert any(n.threads == 2 for n in space.neighbors(DEFAULT_CONFIG))

    def test_sell_neighbors_keep_sigma_aligned(self):
        space = TuneSpace(chunks=(8, 32), sigmas=(1, 128))
        cfg = TuneConfig(fmt="sell", chunk=32, sigma=128)
        for n in space.neighbors(cfg):
            assert n.sigma == 1 or n.sigma % n.chunk == 0


class TestSearch:
    def test_never_slower_than_default(self, ti):
        """The acceptance contract: the default is always in the pool,
        so the tuned config can never measure slower than it."""
        def cost(h, cfg):
            return 1.0 + 0.5 * (cfg.workers - 1)  # default already optimal

        res = tune(ti, measure_fn=cost, n_random=6, greedy_rounds=2, seed=0)
        assert res.seconds <= res.baseline_seconds
        assert res.speedup >= 1.0

    def test_finds_the_planted_optimum(self, ti):
        """Greedy refinement walks to a strictly better neighbor chain."""
        def cost(h, cfg):
            s = 1.0 / (cfg.threads or 1)
            if cfg.fmt == "sell":
                s *= 0.9
            s *= 1.0 + 0.3 * (cfg.workers - 1)
            return s

        res = tune(ti, measure_fn=cost, n_random=4, greedy_rounds=4, seed=3)
        assert res.config.threads == 4
        assert res.config.fmt == "sell"
        assert res.config.workers == 1

    def test_failing_candidates_drop_out(self, ti):
        """A candidate whose measurement raises scores inf, and the
        default still wins."""
        def cost(h, cfg):
            if cfg != DEFAULT_CONFIG:
                raise RuntimeError("combo unavailable on this host")
            return 1.0

        res = tune(ti, measure_fn=cost, n_random=5, greedy_rounds=1, seed=0)
        assert res.config == DEFAULT_CONFIG
        assert res.seconds == 1.0

    def test_default_measured_exactly_once(self, ti):
        calls = []

        def cost(h, cfg):
            calls.append(cfg)
            return 2.0

        tune(ti, measure_fn=cost, n_random=5, greedy_rounds=1, seed=0)
        assert calls.count(DEFAULT_CONFIG) == 1

    def test_real_probe_smoke(self, ti):
        """End-to-end with genuine wall-clock probes on a tiny matrix:
        the by-construction guarantee survives real measurement."""
        space = TuneSpace(workers=(1,), threads=(None, 2), rs=(2,),
                          fmts=("csr",))
        res = tune(ti, space=space, n_random=2, n_measure=2,
                   greedy_rounds=1, n_moments=8, seed=0)
        assert np.isfinite(res.baseline_seconds)
        assert res.seconds <= res.baseline_seconds


class TestModelCost:
    def test_parallelism_never_hurts_at_fixed_shape(self, ti):
        lone = model_cost(ti, DEFAULT_CONFIG)
        threaded = model_cost(ti, TuneConfig(threads=4))
        assert threaded <= lone

    def test_wider_blocks_amortize(self, ti):
        narrow = model_cost(ti, TuneConfig(r=4)) / 4
        wide = model_cost(ti, TuneConfig(r=16)) / 16
        assert wide < narrow  # per-column traffic falls with R (Eq. 5-7)


class TestProfiles:
    def test_roundtrip(self, ti, tmp_path):
        path = tmp_path / "tuned.json"
        res = tune(ti, measure_fn=lambda h, c: 1.0, n_random=2, seed=0)
        save_profile(ti, res, path)
        assert lookup(ti, path) == res.config
        # a different matrix shape misses
        other, _ = build_topological_insulator(6, 6, 4)
        assert lookup(other, path) is None

    def test_corrupt_store_is_empty_not_fatal(self, ti, tmp_path):
        path = tmp_path / "tuned.json"
        path.write_text("{not json")
        assert lookup(ti, path) is None
        # and saving over it recovers
        res = tune(ti, measure_fn=lambda h, c: 1.0, n_random=0, seed=0)
        save_profile(ti, res, path)
        assert lookup(ti, path) == res.config

    def test_missing_store(self, ti, tmp_path):
        assert lookup(ti, tmp_path / "nope.json") is None

    def test_signatures(self, ti):
        assert matrix_signature(ti).startswith(f"n{ti.n_rows}-")
        assert machine_signature() in profile_key(ti)


class TestMeasure:
    def test_serial_probe_runs(self, ti):
        t = measure(ti, TuneConfig(r=2), n_moments=8)
        assert t > 0 and np.isfinite(t)

    def test_sell_probe_converts_outside_timing(self, ti):
        t = measure(ti, TuneConfig(fmt="sell", chunk=8, sigma=8, r=2),
                    n_moments=8)
        assert t > 0 and np.isfinite(t)
