"""Cluster scaling model: paper Fig. 12 and Table III claims."""

import pytest

from repro.dist.scaling_model import (
    ClusterModel,
    WeakScalingCase,
    bar_weak_scaling_domains,
    process_grid,
    square_weak_scaling_domains,
)

NODE_SERIES = [1, 4, 16, 64, 256, 1024]
LARGEST = (6400, 6400, 40)


@pytest.fixture(scope="module")
def model():
    return ClusterModel()


class TestDomainFamilies:
    def test_square_series(self):
        doms = square_weak_scaling_domains(NODE_SERIES)
        assert doms[0] == (400, 100, 40)
        assert doms[1] == (400, 400, 40)
        assert doms[-1] == LARGEST

    def test_largest_square_has_6_5e9_rows(self):
        """Paper: 'a matrix with over 6.5e9 rows' at 1024 nodes."""
        nx, ny, nz = square_weak_scaling_domains([1024])[0]
        assert 4 * nx * ny * nz == pytest.approx(6.55e9, rel=0.01)

    def test_fig1_domain_is_the_64_node_point(self):
        """Fig. 1's 1600x1600x40 system is the 64-node weak-scaling member."""
        assert square_weak_scaling_domains([64])[0] == (1600, 1600, 40)

    def test_square_rejects_non_power_of_4(self):
        with pytest.raises(ValueError):
            square_weak_scaling_domains([8])

    def test_bar_series(self):
        doms = bar_weak_scaling_domains([1, 4, 16])
        assert doms == [(400, 100, 40), (1600, 100, 40), (6400, 100, 40)]

    def test_constant_work_per_node(self):
        for case, doms in (
            ("square", square_weak_scaling_domains(NODE_SERIES)),
            ("bar", bar_weak_scaling_domains(NODE_SERIES)),
        ):
            for n, (nx, ny, nz) in zip(NODE_SERIES, doms):
                assert nx * ny * nz / n == 400 * 100 * 40

    def test_process_grid(self):
        assert process_grid(WeakScalingCase.BAR, 16) == (16, 1)
        px, py = process_grid(WeakScalingCase.SQUARE, 64)
        assert px * py == 64 and abs(px - py) <= px


class TestWeakScaling:
    def test_square_exceeds_100_tflops_at_1024(self, model):
        """Paper: 'more than 100 Tflop/s on 1024 nodes'."""
        rows = model.weak_scaling("square", NODE_SERIES)
        assert rows[-1]["tflops"] > 100.0

    def test_aggregate_peak_fraction_about_10_percent(self, model):
        """Paper: ~10% of the aggregated CPU-GPU peak performance."""
        from repro.perf.arch import PIZ_DAINT_NODE

        tf = model.weak_scaling("square", [1024])[-1]["tflops"]
        peak = 1024 * PIZ_DAINT_NODE.aggregate_peak_gflops / 1000.0
        assert 0.06 <= tf / peak <= 0.12

    def test_square_efficiency_drops_then_flat(self, model):
        """Paper: efficiency drop going to 4 nodes (y-direction growth),
        roughly flat afterwards."""
        rows = model.weak_scaling("square", NODE_SERIES)
        assert rows[0]["efficiency"] == pytest.approx(1.0)
        assert rows[1]["efficiency"] < 0.97
        effs = [r["efficiency"] for r in rows[1:]]
        assert max(effs) - min(effs) < 0.05

    def test_bar_more_efficient_than_square(self, model):
        sq = model.weak_scaling("square", NODE_SERIES)
        bar = model.weak_scaling("bar", NODE_SERIES)
        for s, b in zip(sq[1:], bar[1:]):
            assert b["efficiency"] >= s["efficiency"]


class TestStrongScaling:
    def test_efficiency_decreases(self, model):
        rows = model.strong_scaling((400, 400, 40), [4, 16, 64, 256])
        effs = [r["efficiency"] for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))

    def test_speedup_still_grows(self, model):
        rows = model.strong_scaling((400, 400, 40), [4, 16, 64])
        sp = [r["speedup"] for r in rows]
        assert sp[0] == pytest.approx(1.0)
        assert sp[1] > 2.0 and sp[2] > sp[1]


class TestTable3:
    def test_throughput_mode_over_2x_node_hours(self, model):
        """Paper Table III: the embarrassingly R-parallel version costs
        more than a factor of two in node hours (164 vs 75)."""
        nh_throughput = model.node_hours(LARGEST, 288, 2000, variant="aug_spmv")
        nh_blocked = model.node_hours(LARGEST, 1024, 2000, variant="aug_spmmv")
        assert nh_throughput / nh_blocked > 1.9

    def test_per_iteration_reduction_costs_percent(self, model):
        """Paper: one reduction at the end buys ~8% performance."""
        nh_star = model.node_hours(LARGEST, 1024, 2000, variant="aug_spmmv*")
        nh_opt = model.node_hours(LARGEST, 1024, 2000, variant="aug_spmmv")
        overhead = nh_star / nh_opt - 1.0
        assert 0.02 <= overhead <= 0.15

    def test_absolute_node_hours_near_paper(self, model):
        """Paper values: 164 / 81 / 75 node-hours."""
        assert model.node_hours(LARGEST, 288, 2000, variant="aug_spmv") == \
            pytest.approx(164, rel=0.25)
        assert model.node_hours(LARGEST, 1024, 2000, variant="aug_spmmv") == \
            pytest.approx(75, rel=0.15)

    def test_throughput_tflops_near_paper(self, model):
        """Paper: 14.9 Tflop/s on 288 nodes in throughput mode."""
        tf = model.solve_tflops(LARGEST, 288, 2000, variant="aug_spmv")
        assert tf == pytest.approx(14.9, rel=0.2)

    def test_unknown_variant(self, model):
        with pytest.raises(ValueError):
            model.solve_time(LARGEST, 4, 100, variant="magic")

    def test_invalid_reduction(self, model):
        with pytest.raises(ValueError):
            model.iteration_times(LARGEST, 4, reduction="never")
