"""High-level distributed DOS application driver."""

import numpy as np
import pytest

from repro.core.solver import KPMSolver
from repro.dist.comm import SimWorld
from repro.dist.halo import partition_matrix
from repro.dist.kpm_parallel import distributed_dos
from repro.dist.partition import RowPartition


@pytest.fixture(scope="module")
def ti():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(6, 6, 4)
    return h


class TestDistributedDos:
    def test_matches_serial_solver(self, ti):
        serial = KPMSolver(ti, n_moments=64, n_vectors=4, seed=5)
        part = RowPartition.equal(ti.n_rows, 3, align=4)
        res = distributed_dos(
            ti, part, 64, 4, SimWorld(3), scale=serial.scale, seed=5
        )
        ref = serial.dos()
        assert np.allclose(res.moments, ref.moments, atol=1e-9)
        assert np.allclose(res.rho, ref.rho, atol=1e-8)

    def test_auto_scale(self, ti):
        part = RowPartition.equal(ti.n_rows, 2, align=4)
        res = distributed_dos(ti, part, 32, 2, SimWorld(2), seed=0)
        from repro.core.reconstruct import integrate_density

        assert integrate_density(res.energies, res.rho) == pytest.approx(
            ti.n_rows, rel=0.05
        )

    def test_prepartitioned_requires_scale(self, ti):
        part = RowPartition.equal(ti.n_rows, 2, align=4)
        dist = partition_matrix(ti, part)
        with pytest.raises(ValueError, match="scale"):
            distributed_dos(dist, None, 16, 1, SimWorld(2), seed=0)

    def test_prepartitioned_with_scale(self, ti):
        from repro.core.scaling import lanczos_scale

        scale = lanczos_scale(ti, seed=1)
        part = RowPartition.equal(ti.n_rows, 2, align=4)
        dist = partition_matrix(ti, part)
        res = distributed_dos(
            dist, None, 32, 2, SimWorld(2), scale=scale, seed=1
        )
        assert res.moments[0] == pytest.approx(ti.n_rows, rel=1e-9)

    def test_reduction_variant(self, ti):
        from repro.core.scaling import lanczos_scale

        scale = lanczos_scale(ti, seed=2)
        part = RowPartition.equal(ti.n_rows, 4, align=4)
        a = distributed_dos(
            ti, part, 32, 2, SimWorld(4), scale=scale, seed=2,
            reduction="end",
        )
        b = distributed_dos(
            ti, part, 32, 2, SimWorld(4), scale=scale, seed=2,
            reduction="every",
        )
        assert np.allclose(a.moments, b.moments, atol=1e-10)


class TestCommOverlapModel:
    def test_overlap_reduces_iteration_total(self):
        from repro.dist.scaling_model import ClusterModel

        base = ClusterModel(r=32)
        overlapped = ClusterModel(r=32, comm_overlap=True)
        dom = (6400, 6400, 40)
        it_base = base.iteration_times(dom, 1024)
        it_over = overlapped.iteration_times(dom, 1024)
        assert it_over["halo"] < it_base["halo"]
        assert it_over["total"] < it_base["total"]
        assert it_over["compute"] == it_base["compute"]

    def test_overlap_never_hurts_weak_scaling(self):
        from repro.dist.scaling_model import ClusterModel

        base = ClusterModel(r=32)
        overlapped = ClusterModel(r=32, comm_overlap=True)
        for b, o in zip(
            base.weak_scaling("square", [1, 4, 64]),
            overlapped.weak_scaling("square", [1, 4, 64]),
        ):
            assert o["tflops"] >= b["tflops"] - 1e-12
