"""Pricing functional message logs with the network model."""

import numpy as np
import pytest

from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import MessageLog, SimWorld
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.network import NetworkModel
from repro.dist.partition import RowPartition


class TestPriceLog:
    def test_empty_log(self):
        out = NetworkModel().price_log(MessageLog())
        assert out == {"per_rank_max": 0.0, "sum": 0.0, "messages": 0.0}

    def test_single_message(self):
        n = NetworkModel()
        log = MessageLog()
        log.add(0, 1, 1 << 20, "halo")
        out = n.price_log(log)
        assert out["sum"] == pytest.approx(n.ptp_time(1 << 20))
        assert out["per_rank_max"] == out["sum"]
        assert out["messages"] == 1

    def test_gpu_endpoint_pays_pcie(self):
        n = NetworkModel()
        log = MessageLog()
        log.add(0, 1, 1 << 20, "halo")
        cpu_only = n.price_log(log, devices=["cpu", "cpu"])["sum"]
        with_gpu = n.price_log(log, devices=["cpu", "gpu"])["sum"]
        assert with_gpu == pytest.approx(
            cpu_only + n.pcie_time(1 << 20)
        )

    def test_both_gpu_endpoints_double_staging(self):
        n = NetworkModel()
        log = MessageLog()
        log.add(0, 1, 1 << 20, "halo")
        one = n.price_log(log, devices=["cpu", "gpu"])["sum"]
        two = n.price_log(log, devices=["gpu", "gpu"])["sum"]
        assert two > one

    def test_pipelined_staging_hides_pcie(self):
        log = MessageLog()
        log.add(0, 1, 1 << 22, "halo")
        serial = NetworkModel(pcie_overlap=False)
        piped = NetworkModel(pcie_overlap=True)
        assert piped.price_log(log, devices=["cpu", "gpu"])["sum"] < \
            serial.price_log(log, devices=["cpu", "gpu"])["sum"]

    def test_per_rank_max_vs_sum(self):
        n = NetworkModel()
        log = MessageLog()
        log.add(0, 1, 1000, "x")
        log.add(1, 0, 1000, "x")
        out = n.price_log(log, n_ranks=2)
        assert out["per_rank_max"] < out["sum"]

    def test_prices_functional_kpm_run(self):
        """End-to-end: run the distributed solver, price its log."""
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(6, 6, 3)
        scale = lanczos_scale(h, seed=0)
        blk = make_block_vector(h.n_rows, 2, seed=0)
        world = SimWorld(3, devices=["cpu", "gpu", "gpu"])
        part = RowPartition.equal(h.n_rows, 3, align=4)
        distributed_eta(h, part, scale, 16, blk, world)
        out = NetworkModel().price_log(world.log, devices=world.devices)
        assert out["messages"] == world.log.n_messages
        assert 0 < out["per_rank_max"] <= out["sum"]
        # GPU staging makes the same run dearer than an all-CPU pricing
        cpu_price = NetworkModel().price_log(world.log, devices=["cpu"] * 3)
        assert out["sum"] > cpu_price["sum"]
