"""Automatic weight determination (paper-outlook feature)."""

import numpy as np
import pytest

from repro.dist.autotune import AutotuneResult, autotune_weights, throughput_timer
from repro.dist.partition import RowPartition
from repro.util.errors import PartitionError


class TestThroughputTimer:
    def test_linear_in_rows(self):
        t = throughput_timer([10.0, 20.0], flops_per_row=100.0)
        assert t(0, 1000) == pytest.approx(2 * t(0, 500))
        assert t(1, 1000) == pytest.approx(0.5 * t(0, 1000))

    def test_rejects_nonpositive(self):
        with pytest.raises(PartitionError):
            throughput_timer([1.0, 0.0], 1.0)


class TestAutotune:
    def test_converges_to_performance_ratio(self):
        """Two ranks at 57.5 / 84.1 Gflop/s (the Fig. 11 devices) must end
        up with weights at the throughput ratio."""
        timer = throughput_timer([57.5, 84.1], flops_per_row=4000.0)
        res = autotune_weights(1_000_000, 2, timer, align=4)
        assert res.converged
        assert res.weights[1] / res.weights[0] == pytest.approx(
            84.1 / 57.5, rel=0.02
        )

    def test_single_round_if_initialized_right(self):
        timer = throughput_timer([1.0, 3.0], 1.0)
        res = autotune_weights(
            10_000, 2, timer, initial_weights=[0.25, 0.75]
        )
        assert res.converged
        assert res.rounds == 1

    def test_balances_many_ranks(self):
        rates = [1.0, 2.0, 4.0, 8.0]
        timer = throughput_timer(rates, 1.0)
        res = autotune_weights(200_000, 4, timer, align=4)
        assert res.converged
        expected = np.array(rates) / sum(rates)
        assert np.allclose(res.weights, expected, atol=0.02)

    def test_partition_matches_weights(self):
        timer = throughput_timer([1.0, 1.0, 2.0], 1.0)
        res = autotune_weights(40_000, 3, timer, align=8)
        counts = res.partition.counts()
        assert counts.sum() == 40_000
        assert counts[2] == pytest.approx(20_000, abs=100)

    def test_damping_slows_convergence(self):
        timer = throughput_timer([1.0, 5.0], 1.0)
        fast = autotune_weights(100_000, 2, timer, damping=1.0)
        slow = autotune_weights(100_000, 2, timer, damping=0.3)
        assert slow.rounds >= fast.rounds

    def test_history_recorded(self):
        timer = throughput_timer([1.0, 2.0], 1.0)
        res = autotune_weights(10_000, 2, timer)
        assert len(res.history) == res.rounds
        assert res.history[0] == [0.5, 0.5]

    def test_nonconvergence_reported(self):
        """A timer whose rank-0 speed flips every round defeats a tight
        tolerance: the weights keep chasing a moving target."""
        state = {"calls": 0}

        def jitter_timer(rank, rows):
            # ~4 calls per round (times + probe for both ranks)
            round_idx = state["calls"] // 4
            state["calls"] += 1
            scale = 2.0 if round_idx % 2 == 0 else 0.5
            return rows * (scale if rank == 0 else 1.0)

        res = autotune_weights(
            10_000, 2, jitter_timer, tolerance=1e-6, max_rounds=3
        )
        assert not res.converged
        assert res.rounds == 3

    def test_validation(self):
        timer = throughput_timer([1.0], 1.0)
        with pytest.raises(PartitionError):
            autotune_weights(100, 1, timer, initial_weights=[-1.0])
        with pytest.raises(ValueError):
            autotune_weights(100, 1, timer, damping=0.0)

    def test_imbalance_metric(self):
        """imbalance() is the loop's convergence statistic: relative
        spread (max-min)/mean, 0.0 when perfectly balanced."""
        res = AutotuneResult([0.5, 0.5], RowPartition((0, 5, 10)), 1, True)
        assert res.imbalance([1.0, 1.0]) == pytest.approx(0.0)
        assert res.imbalance([1.0, 3.0]) == pytest.approx(1.0)
        # zero guard: all-zero timings count as balanced, not a crash
        assert res.imbalance([0.0, 0.0]) == 0.0

    def test_imbalance_matches_convergence_tolerance(self):
        """A converged run's final-round times satisfy the same bound the
        loop tested — the two statistics are now one definition."""
        timer = throughput_timer([1.0, 3.0], 1.0)
        res = autotune_weights(10_000, 2, timer, tolerance=0.02)
        assert res.converged
        counts = res.partition.counts()
        times = [timer(p, int(counts[p])) for p in range(2)]
        assert res.imbalance(times) <= 0.02


class TestConvergenceRate:
    """The docstring's claim — the throughput-proportional fixed point is
    reached in 2-3 rounds from a cold (uniform) start — holds for every
    noise-free rate profile, not just the Fig. 11 pair."""

    @pytest.mark.parametrize("rates", [
        [1.0, 2.0],
        [57.5, 84.1],
        [1.0, 1.0, 10.0],
        [1.0, 2.0, 4.0, 8.0],
    ])
    def test_two_to_three_rounds_from_uniform(self, rates):
        timer = throughput_timer(rates, flops_per_row=2000.0)
        res = autotune_weights(400_000, len(rates), timer, align=4)
        assert res.converged
        assert 2 <= res.rounds <= 3, res.rounds
        expected = np.array(rates) / sum(rates)
        assert np.allclose(res.weights, expected, atol=0.02)

    def test_damped_update_still_converges(self):
        timer = throughput_timer([1.0, 4.0], 1.0)
        res = autotune_weights(100_000, 2, timer, damping=0.5, max_rounds=16)
        assert res.converged
        assert res.weights[1] / res.weights[0] == pytest.approx(4.0, rel=0.05)


class TestWeightNormalization:
    def test_result_and_history_sum_to_one(self):
        timer = throughput_timer([1.0, 3.0, 6.0], 1.0)
        res = autotune_weights(
            120_000, 3, timer, initial_weights=[2.0, 2.0, 6.0]
        )
        assert sum(res.weights) == pytest.approx(1.0)
        for w in res.history:
            assert sum(w) == pytest.approx(1.0)
        # history[0] is the *normalized* initial guess
        assert res.history[0] == pytest.approx([0.2, 0.2, 0.6])

    def test_unnormalized_initial_weights_accepted(self):
        timer = throughput_timer([1.0, 3.0], 1.0)
        res = autotune_weights(
            10_000, 2, timer, initial_weights=[25.0, 75.0]
        )
        assert res.converged
        assert res.rounds == 1

    def test_zero_weight_rank_reenters(self):
        """A rank starting at zero weight is probed with one alignment
        block and pulled back into the distribution."""
        timer = throughput_timer([1.0, 1.0], 1.0)
        res = autotune_weights(
            10_000, 2, timer, initial_weights=[1.0, 0.0]
        )
        assert res.converged
        assert res.weights[1] == pytest.approx(0.5, abs=0.05)


class TestErrorPaths:
    def test_wrong_shape_initial_weights(self):
        timer = throughput_timer([1.0, 1.0], 1.0)
        with pytest.raises(PartitionError):
            autotune_weights(1000, 2, timer, initial_weights=[1.0])

    def test_zero_sum_initial_weights(self):
        timer = throughput_timer([1.0, 1.0], 1.0)
        with pytest.raises(PartitionError):
            autotune_weights(1000, 2, timer, initial_weights=[0.0, 0.0])

    def test_negative_initial_weights(self):
        timer = throughput_timer([1.0, 1.0], 1.0)
        with pytest.raises(PartitionError):
            autotune_weights(1000, 2, timer, initial_weights=[1.5, -0.5])

    def test_negative_rank_rate(self):
        with pytest.raises(PartitionError):
            throughput_timer([1.0, -2.0], 1.0)
