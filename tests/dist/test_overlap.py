"""Interior/boundary splitting for communication hiding."""

import numpy as np
import pytest

from repro.dist.halo import partition_matrix
from repro.dist.overlap import (
    exposed_communication_time,
    split_for_overlap,
    two_phase_spmmv,
)
from repro.dist.partition import RowPartition


@pytest.fixture(scope="module")
def dist():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(8, 6, 4)
    part = RowPartition.equal(h.n_rows, 3, align=4)
    return h, partition_matrix(h, part)


class TestSplit:
    def test_rows_partitioned(self, dist):
        _, d = dist
        for blk in d.blocks:
            s = split_for_overlap(blk)
            combined = np.sort(np.concatenate([s.interior, s.boundary]))
            assert np.array_equal(combined, np.arange(blk.n_local))

    def test_interior_has_no_halo_columns(self, dist):
        _, d = dist
        for blk in d.blocks:
            s = split_for_overlap(blk)
            if s.interior_matrix.nnz:
                assert int(s.interior_matrix.indices.max()) < blk.n_local

    def test_boundary_rows_touch_halo(self, dist):
        _, d = dist
        for blk in d.blocks:
            s = split_for_overlap(blk)
            m = s.boundary_matrix
            for k in range(m.n_rows):
                cols = m.indices[m.indptr[k]:m.indptr[k + 1]]
                assert np.any(cols >= blk.n_local)

    def test_interior_fraction_grows_with_slab_thickness(self):
        """Thick stencil slabs are mostly interior: only the two site
        layers adjacent to the cuts reference halo data."""
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 12)
        d = partition_matrix(h, RowPartition.equal(h.n_rows, 3, align=4))
        fractions = [
            split_for_overlap(blk).interior_fraction for blk in d.blocks
        ]
        # each rank owns 4 z-planes; the middle ~2 are interior
        assert all(f >= 0.4 for f in fractions)

    def test_single_rank_all_interior(self):
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 2)
        d = partition_matrix(h, RowPartition((0, h.n_rows)))
        s = split_for_overlap(d.blocks[0])
        assert s.boundary.size == 0
        assert s.interior_fraction == 1.0


class TestTwoPhaseProduct:
    def test_equals_single_phase(self, dist):
        h, d = dist
        rng = np.random.default_rng(0)
        r = 3
        x_global = np.ascontiguousarray(
            rng.normal(size=(h.n_rows, r)) + 1j * rng.normal(size=(h.n_rows, r))
        )
        y_ref = h.to_dense() @ x_global
        for blk in d.blocks:
            s = split_for_overlap(blk)
            v_local = x_global[blk.row_start:blk.row_stop]
            halo = x_global[blk.halo_global]
            out = two_phase_spmmv(s, np.ascontiguousarray(v_local),
                                  np.ascontiguousarray(halo))
            assert np.allclose(out, y_ref[blk.row_start:blk.row_stop],
                               atol=1e-10)

    def test_out_parameter(self, dist):
        h, d = dist
        blk = d.blocks[0]
        s = split_for_overlap(blk)
        r = 2
        v = np.zeros((blk.n_local, r), dtype=complex)
        halo = np.zeros((blk.n_halo, r), dtype=complex)
        out = np.empty((blk.n_local, r), dtype=complex)
        res = two_phase_spmmv(s, v, halo, out=out)
        assert res is out
        assert np.allclose(out, 0)


class TestExposedTime:
    def test_fully_hidden(self):
        assert exposed_communication_time(1.0, 3.0, 0.5) == 0.0

    def test_partially_hidden(self):
        assert exposed_communication_time(1.0, 1.0, 0.4) == pytest.approx(0.6)

    def test_no_interior_no_hiding(self):
        assert exposed_communication_time(1.0, 5.0, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            exposed_communication_time(1.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            exposed_communication_time(-1.0, 1.0, 0.5)
