"""Simulated communicator: transfers, collectives, logging."""

import numpy as np
import pytest

from repro.dist.comm import MessageLog, SimWorld
from repro.util.errors import SimulationError


class TestSend:
    def test_delivers_copy(self):
        w = SimWorld(2)
        data = np.arange(4.0)
        recv = w.send(0, 1, data, "halo")
        assert np.allclose(recv, data)
        recv[0] = 99
        assert data[0] == 0.0

    def test_logged(self):
        w = SimWorld(3)
        w.send(0, 2, np.zeros(10), "halo")
        rec = w.log.records[0]
        assert (rec.src, rec.dst, rec.nbytes, rec.phase) == (0, 2, 80, "halo")

    def test_self_send_rejected(self):
        w = SimWorld(2)
        with pytest.raises(SimulationError):
            w.send(1, 1, np.zeros(1), "x")

    def test_rank_bounds(self):
        w = SimWorld(2)
        with pytest.raises(SimulationError):
            w.send(0, 2, np.zeros(1), "x")


class TestAllreduce:
    def test_sum(self):
        w = SimWorld(3)
        parts = [np.full(4, float(r)) for r in range(3)]
        total = w.allreduce_sum(parts)
        assert np.allclose(total, 3.0)

    def test_single_rank_no_messages(self):
        w = SimWorld(1)
        w.allreduce_sum([np.ones(5)])
        assert w.log.n_messages == 0

    def test_message_stages_logged(self):
        w = SimWorld(4)
        w.allreduce_sum([np.ones(2)] * 4)
        # recursive doubling on 4 ranks: 2 stages x 4 ranks
        assert w.log.n_messages == 8

    def test_contribution_count_checked(self):
        w = SimWorld(2)
        with pytest.raises(SimulationError):
            w.allreduce_sum([np.ones(2)])

    def test_shape_mismatch_rejected(self):
        w = SimWorld(2)
        with pytest.raises(SimulationError):
            w.allreduce_sum([np.ones(2), np.ones(3)])


class TestLog:
    def test_totals(self):
        log = MessageLog()
        log.add(0, 1, 100, "a")
        log.add(1, 0, 50, "b")
        assert log.total_bytes == 150
        assert log.n_messages == 2

    def test_by_phase(self):
        log = MessageLog()
        log.add(0, 1, 10, "halo")
        log.add(0, 1, 20, "halo")
        log.add(1, 0, 5, "allreduce")
        assert log.bytes_by_phase() == {"halo": 30, "allreduce": 5}

    def test_by_rank(self):
        log = MessageLog()
        log.add(0, 1, 10, "x")
        log.add(1, 0, 30, "x")
        log.add(1, 2, 5, "x")
        assert np.array_equal(log.bytes_by_rank(3), [10, 35, 0])

    def test_clear(self):
        log = MessageLog()
        log.add(0, 1, 10, "x")
        log.clear()
        assert log.n_messages == 0


class TestDevices:
    def test_default_cpu(self):
        assert SimWorld(2).devices == ["cpu", "cpu"]

    def test_labels_validated(self):
        with pytest.raises(SimulationError):
            SimWorld(2, devices=["cpu"])
        with pytest.raises(SimulationError):
            SimWorld(1, devices=["tpu"])
