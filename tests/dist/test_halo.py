"""Halo pattern extraction and local matrix reassembly."""

import numpy as np
import pytest

from repro.dist.halo import partition_matrix
from repro.dist.partition import RowPartition
from repro.sparse.csr import CSRMatrix
from repro.util.errors import PartitionError


@pytest.fixture
def dist_ti(ti_small):
    h, _ = ti_small
    part = RowPartition.from_weights(h.n_rows, [2, 1, 1], align=4)
    return h, part, partition_matrix(h, part)


class TestPartitioning:
    def test_blocks_cover_all_rows(self, dist_ti):
        h, part, dist = dist_ti
        assert sum(b.n_local for b in dist.blocks) == h.n_rows

    def test_local_matrices_reassemble_global(self, dist_ti):
        """Scattering each block's columns back to global indices must
        reproduce the original matrix exactly."""
        h, part, dist = dist_ti
        dense = np.zeros(h.shape, dtype=complex)
        for blk in dist.blocks:
            local_dense = blk.matrix.to_dense()
            col_map = np.concatenate(
                [np.arange(blk.row_start, blk.row_stop), blk.halo_global]
            )
            for j_local, j_global in enumerate(col_map):
                dense[blk.row_start : blk.row_stop, j_global] += local_dense[
                    :, j_local
                ]
        assert np.allclose(dense, h.to_dense())

    def test_halo_excludes_local_columns(self, dist_ti):
        _, part, dist = dist_ti
        for blk in dist.blocks:
            assert np.all(
                (blk.halo_global < blk.row_start)
                | (blk.halo_global >= blk.row_stop)
            )

    def test_halo_grouped_by_source(self, dist_ti):
        _, part, dist = dist_ti
        for blk in dist.blocks:
            if blk.halo_sources.size:
                owners = part.owner_of(blk.halo_global)
                # grouped: owner sequence is sorted
                assert np.all(np.diff(owners) >= 0)
                assert np.array_equal(np.unique(owners), blk.halo_sources)

    def test_send_rows_local_and_valid(self, dist_ti):
        _, part, dist = dist_ti
        for (src, dst), rows in dist.pattern.send_rows.items():
            lo, hi = part.bounds(src)
            assert np.all(rows >= 0) and np.all(rows < hi - lo)

    def test_pattern_counts_match_halo(self, dist_ti):
        _, _, dist = dist_ti
        for blk in dist.blocks:
            total = sum(
                dist.pattern.send_rows[(int(s), blk.rank)].size
                for s in blk.halo_sources
            )
            assert total == blk.n_halo

    def test_neighbors_of(self, dist_ti):
        _, _, dist = dist_ti
        for rank in range(dist.n_ranks):
            for q in dist.pattern.neighbors_of(rank):
                assert (rank, q) in dist.pattern.send_rows

    def test_bytes_per_exchange(self, dist_ti):
        _, _, dist = dist_ti
        total_rows = dist.pattern.total_rows_exchanged()
        assert dist.pattern.bytes_per_exchange(r=4) == total_rows * 4 * 16


class TestValidation:
    def test_nonsquare_rejected(self):
        m = CSRMatrix.from_coo([0], [0], [1.0], (2, 3))
        with pytest.raises(PartitionError):
            partition_matrix(m, RowPartition((0, 1, 2)))

    def test_partition_size_mismatch(self, ti_small):
        h, _ = ti_small
        with pytest.raises(PartitionError):
            partition_matrix(h, RowPartition((0, 10)))

    def test_single_rank_no_halo(self, ti_small):
        h, _ = ti_small
        dist = partition_matrix(h, RowPartition((0, h.n_rows)))
        assert dist.blocks[0].n_halo == 0
        assert dist.pattern.total_rows_exchanged() == 0
