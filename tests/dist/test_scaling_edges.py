"""Edge cases of the cluster scaling model."""

import pytest

from repro.dist.scaling_model import (
    ClusterModel,
    WeakScalingCase,
    process_grid,
)


@pytest.fixture
def model():
    return ClusterModel(r=32)


class TestProcessGrid:
    def test_square_prefers_balanced(self):
        px, py = process_grid(WeakScalingCase.SQUARE, 64)
        assert (px, py) == (8, 8)

    def test_square_handles_non_square_counts(self):
        px, py = process_grid(WeakScalingCase.SQUARE, 12)
        assert px * py == 12
        assert px <= py

    def test_bar_one_dimensional(self):
        assert process_grid(WeakScalingCase.BAR, 7) == (7, 1)

    def test_single_node(self):
        assert process_grid(WeakScalingCase.SQUARE, 1) == (1, 1)


class TestHaloGeometry:
    def test_single_node_no_faces(self, model):
        assert model.halo_rows_per_node((400, 100, 40), (1, 1)) == []

    def test_bar_grid_two_faces(self, model):
        faces = model.halo_rows_per_node((1600, 100, 40), (4, 1))
        assert len(faces) == 2
        assert all(f == 4 * 100 * 40 for f in faces)

    def test_square_grid_four_faces(self, model):
        faces = model.halo_rows_per_node((800, 800, 40), (4, 4))
        assert len(faces) == 4
        assert all(f == 4 * 200 * 40 for f in faces)

    def test_ceil_division_for_ragged_grids(self, model):
        # 6400 over 18 ranks -> local extent ceil(6400/18) = 356
        faces = model.halo_rows_per_node((6400, 6400, 40), (16, 18))
        assert 4 * 356 * 40 in faces


class TestIterationTimes:
    def test_components_positive_and_sum(self, model):
        it = model.iteration_times((400, 400, 40), 4)
        assert it["total"] == pytest.approx(
            it["compute"] + it["halo"] + it["reduce"]
        )
        assert it["reduce"] == 0.0  # reduction='end' default

    def test_reduce_every_adds_time(self, model):
        end = model.iteration_times((400, 400, 40), 4, reduction="end")
        every = model.iteration_times((400, 400, 40), 4, reduction="every")
        assert every["reduce"] > 0
        assert every["total"] > end["total"]

    def test_grid_mismatch_rejected(self, model):
        with pytest.raises(ValueError, match="grid"):
            model.iteration_times((400, 400, 40), 4, grid=(3, 2))

    def test_nodes_positive(self, model):
        with pytest.raises(ValueError):
            model.iteration_times((400, 400, 40), 0)

    def test_larger_r_amortizes_matrix(self, model):
        """Per-flop time falls with R (code balance shrinks)."""
        t8 = model.iteration_times((400, 400, 40), 4, r=8)["compute"] / 8
        t32 = model.iteration_times((400, 400, 40), 4, r=32)["compute"] / 32
        assert t32 < t8


class TestSolveEdges:
    def test_solve_time_positive_small_cluster(self, model):
        assert model.solve_time((400, 100, 40), 1, 10) > 0

    def test_more_nodes_faster_wallclock(self, model):
        t4 = model.solve_time((1600, 1600, 40), 4, 200)
        t64 = model.solve_time((1600, 1600, 40), 64, 200)
        assert t64 < t4

    def test_m_validated(self, model):
        with pytest.raises(ValueError):
            model.solve_time((400, 100, 40), 1, 0)

    def test_gpu_row_fraction_in_unit_interval(self, model):
        f = model.gpu_row_fraction()
        assert 0.0 < f < 1.0
        # the GPU is the faster device on the Piz Daint node
        assert f > 0.5
