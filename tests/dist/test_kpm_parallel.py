"""Distributed KPM equals serial KPM, message accounting included."""

import numpy as np
import pytest

from repro.core.moments import compute_eta, eta_to_moments
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.halo import partition_matrix
from repro.dist.kpm_parallel import distributed_dos_moments, distributed_eta
from repro.dist.partition import RowPartition
from repro.util.errors import SimulationError


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(8, 6, 4)
    scale = lanczos_scale(h, seed=1)
    blk = make_block_vector(h.n_rows, 4, seed=2)
    ref = compute_eta(h, scale, 24, blk, "aug_spmmv")
    return h, scale, blk, ref


class TestEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
    def test_matches_serial_equal_partition(self, system, n_ranks):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, n_ranks, align=4)
        world = SimWorld(n_ranks)
        eta = distributed_eta(h, part, scale, 24, blk, world)
        assert np.allclose(eta, ref, atol=1e-9)

    def test_matches_serial_weighted(self, system):
        h, scale, blk, ref = system
        part = RowPartition.from_weights(h.n_rows, [0.55, 0.25, 0.2], align=4)
        eta = distributed_eta(h, part, scale, 24, blk, SimWorld(3))
        assert np.allclose(eta, ref, atol=1e-9)

    def test_reduction_every_same_result(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 4, align=4)
        eta = distributed_eta(
            h, part, scale, 24, blk, SimWorld(4), reduction="every"
        )
        assert np.allclose(eta, ref, atol=1e-9)

    def test_prepartitioned_matrix_accepted(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        dist = partition_matrix(h, part)
        eta = distributed_eta(dist, None, scale, 24, blk, SimWorld(2))
        assert np.allclose(eta, ref, atol=1e-9)

    def test_dos_moments_match(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 3, align=4)
        mu = distributed_dos_moments(h, part, scale, 24, blk, SimWorld(3))
        assert np.allclose(mu, eta_to_moments(ref).mean(axis=0).real, atol=1e-9)


class TestCommunication:
    def test_halo_volume_matches_pattern(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 4, align=4)
        dist = partition_matrix(h, part)
        world = SimWorld(4)
        m = 24
        distributed_eta(dist, None, scale, m, blk, world)
        halo_bytes = world.log.bytes_by_phase()
        per_exchange = dist.pattern.bytes_per_exchange(r=4)
        # one init exchange + (M/2 - 1) iteration exchanges
        assert halo_bytes["halo_init"] == per_exchange
        assert halo_bytes["halo"] == (m // 2 - 1) * per_exchange

    def test_reduction_every_costs_more_messages(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 4, align=4)
        w_end = SimWorld(4)
        distributed_eta(h, part, scale, 24, blk, w_end, reduction="end")
        w_every = SimWorld(4)
        distributed_eta(h, part, scale, 24, blk, w_every, reduction="every")
        assert w_every.log.n_messages > w_end.log.n_messages

    def test_single_rank_communicates_nothing_but_final(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 1)
        world = SimWorld(1)
        distributed_eta(h, part, scale, 24, blk, world)
        assert world.log.n_messages == 0


class TestValidation:
    def test_world_size_mismatch(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        with pytest.raises(SimulationError):
            distributed_eta(h, part, scale, 24, blk, SimWorld(3))

    def test_partition_required(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError):
            distributed_eta(h, None, scale, 24, blk, SimWorld(1))

    def test_bad_reduction(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 1)
        with pytest.raises(ValueError):
            distributed_eta(
                h, part, scale, 24, blk, SimWorld(1), reduction="sometimes"
            )
