"""Interconnect cost model."""

import pytest

from repro.dist.network import CRAY_ARIES, NetworkModel


class TestPtp:
    def test_latency_floor(self):
        n = NetworkModel()
        assert n.ptp_time(0) == pytest.approx(n.latency_s)

    def test_bandwidth_term(self):
        n = NetworkModel(latency_s=0.0, bandwidth_gbs=10.0)
        assert n.ptp_time(10e9) == pytest.approx(1.0)

    def test_monotone_in_size(self):
        n = NetworkModel()
        assert n.ptp_time(1 << 20) < n.ptp_time(1 << 24)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().ptp_time(-1)
        with pytest.raises(ValueError):
            NetworkModel().pcie_time(-1)


class TestHalo:
    def test_gpu_staging_adds_time(self):
        n = NetworkModel()
        faces = [1 << 20] * 4
        cpu_only = n.halo_time(faces, gpu_fraction=0.0)
        with_gpu = n.halo_time(faces, gpu_fraction=0.7)
        assert with_gpu > cpu_only

    def test_pipelined_staging_cheaper(self):
        serial = NetworkModel(pcie_overlap=False)
        overlap = NetworkModel(pcie_overlap=True)
        faces = [1 << 22] * 2
        assert overlap.halo_time(faces, gpu_fraction=0.7) < serial.halo_time(
            faces, gpu_fraction=0.7
        )

    def test_no_faces_no_time(self):
        assert NetworkModel().halo_time([]) == 0.0


class TestAllreduce:
    def test_single_rank_free(self):
        assert NetworkModel().allreduce_time(1024, 1) == 0.0

    def test_log_scaling(self):
        n = NetworkModel()
        t4 = n.allreduce_time(1024, 4)
        t1024 = n.allreduce_time(1024, 1024)
        assert t1024 == pytest.approx(5 * t4, rel=0.01)

    def test_sync_penalty_with_compute_time(self):
        n = NetworkModel()
        base = n.allreduce_time(1024, 16)
        loaded = n.allreduce_time(1024, 16, compute_time=1.0)
        assert loaded == pytest.approx(base + n.sync_imbalance_fraction)

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            NetworkModel().allreduce_time(1, 0)


def test_cray_aries_defaults():
    assert CRAY_ARIES.bandwidth_gbs > 0
    assert CRAY_ARIES.pcie_bandwidth_gbs < CRAY_ARIES.bandwidth_gbs * 2
