"""Differential tests: multiprocess engine vs SPMD simulator vs serial.

The three executions of the same KPM problem — serial ``compute_eta``,
the sequential :class:`SimWorld` simulator, and real worker processes
over shared memory (:class:`MpWorld`) — must agree on the moments to
reduction-order tolerance, and the mp engine must charge its
:class:`MessageLog` record-for-record like the simulator, so the network
cost model prices both identically.  Failure handling is differential
too: a crashing worker must surface as a clean ``SimulationError`` with
no hang and no leaked shared-memory segments.
"""

import time

import numpy as np
import pytest

from repro.core.moments import compute_eta
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.halo import partition_matrix
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.mp import MpWorld, mp_eta
from repro.dist.partition import RowPartition
from repro.dist.shm import segment_exists
from repro.sparse.backend.native import native_available
from repro.util.errors import SimulationError

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

M = 24  # moments for the standard parity runs


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(8, 6, 4)
    scale = lanczos_scale(h, seed=1)
    blk = make_block_vector(h.n_rows, 4, seed=2)
    ref = compute_eta(h, scale, M, blk, "aug_spmmv")
    return h, scale, blk, ref


def run_pair(h, scale, blk, part, m=M, **kw):
    """The same problem through MpWorld and SimWorld; returns both."""
    mw = MpWorld(part.n_ranks)
    eta_mp = distributed_eta(h, part, scale, m, blk, mw, **kw)
    sw = SimWorld(part.n_ranks)
    eta_sim = distributed_eta(h, part, scale, m, blk, sw, **kw)
    return eta_mp, eta_sim, mw, sw


class TestParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_serial_and_sim(self, system, n_workers):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, n_workers, align=4)
        eta_mp, eta_sim, mw, sw = run_pair(h, scale, blk, part)
        assert np.allclose(eta_mp, ref, atol=1e-9)
        # mp and sim run the identical per-rank arithmetic and the same
        # reduction order, so they agree far tighter than either vs serial
        assert np.allclose(eta_mp, eta_sim, atol=1e-12, rtol=0)
        # ... and charge the message log record-for-record identically
        assert mw.log.records == sw.log.records

    def test_skewed_weights(self, system):
        h, scale, blk, ref = system
        part = RowPartition.from_weights(h.n_rows, [0.6, 0.1, 0.3], align=4)
        eta_mp, eta_sim, mw, sw = run_pair(h, scale, blk, part)
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert np.allclose(eta_mp, eta_sim, atol=1e-12, rtol=0)
        assert mw.log.records == sw.log.records

    @pytest.mark.parametrize("r", [1, 8, 32])
    def test_block_widths(self, system, r):
        h, scale, _, _ = system
        m = 8  # keep the R=32 case cheap
        blk = make_block_vector(h.n_rows, r, seed=7)
        ref = compute_eta(h, scale, m, blk, "aug_spmmv")
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, mw, sw = run_pair(h, scale, blk, part, m=m)
        assert eta_mp.shape == (r, m)
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert np.allclose(eta_mp, eta_sim, atol=1e-12, rtol=0)
        assert mw.log.records == sw.log.records

    def test_numpy_backend(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, _, _ = run_pair(
            h, scale, blk, part, backend="numpy"
        )
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert np.allclose(eta_mp, eta_sim, atol=1e-12, rtol=0)

    @needs_native
    def test_native_backend(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, _, _ = run_pair(
            h, scale, blk, part, backend="native"
        )
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert np.allclose(eta_mp, eta_sim, atol=1e-12, rtol=0)

    @needs_native
    def test_per_rank_backend_mix(self, system):
        """Heterogeneous worlds: one rank native, one numpy."""
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2, backend=["native", "numpy"])
        eta = distributed_eta(h, part, scale, M, blk, mw)
        assert np.allclose(eta, ref, atol=1e-9)

    def test_reduction_every(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, mw, sw = run_pair(
            h, scale, blk, part, reduction="every"
        )
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert np.allclose(eta_mp, eta_sim, atol=1e-12, rtol=0)
        assert mw.log.records == sw.log.records
        # every rank performed the per-iteration reduction events
        assert (mw.last_acct[:, 2] == 2 * (M // 2)).all()

    def test_spawn_start_method(self, system):
        """Spawned workers (fresh interpreters) produce the fork result."""
        if "spawn" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        h, scale, _, _ = system
        blk = make_block_vector(h.n_rows, 2, seed=3)
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2, start_method="spawn", timeout=300.0)
        eta = distributed_eta(h, part, scale, 8, blk, mw)
        ref = compute_eta(h, scale, 8, blk, "aug_spmmv")
        assert np.allclose(eta, ref, atol=1e-9)


class TestAccounting:
    def test_halo_acct_matches_pattern(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 3, align=4)
        dist = partition_matrix(h, part)
        mw = MpWorld(3)
        distributed_eta(dist, None, scale, M, blk, mw)
        itemsize = np.dtype(np.complex128).itemsize
        # workers count the bytes they actually copy into send windows;
        # over the run that is M/2 exchanges of the pattern volume
        total = mw.last_acct[:, 1].sum()
        assert total == (M // 2) * dist.pattern.bytes_per_exchange(r=4)
        assert mw.last_acct[:, 1].sum() % itemsize == 0

    def test_single_rank_no_messages(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 1)
        mw = MpWorld(1)
        distributed_eta(h, part, scale, M, blk, mw)
        assert mw.log.n_messages == 0
        assert mw.last_acct[:, :2].sum() == 0

    def test_segments_unlinked_after_success(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2)
        distributed_eta(h, part, scale, M, blk, mw)
        assert mw.last_segment_names  # the run did use shared memory
        assert not any(segment_exists(nm) for nm in mw.last_segment_names)


class TestObservability:
    """Per-worker counters/metrics shipped back and merged in the parent."""

    def test_mp_counters_equal_serial(self, system):
        from repro.obs import MetricsRegistry
        from repro.util.counters import PerfCounters

        h, scale, blk, _ = system
        serial = PerfCounters()
        compute_eta(h, scale, M, blk, "aug_spmmv", serial)

        part = RowPartition.equal(h.n_rows, 3, align=4)
        merged = PerfCounters()
        metrics = MetricsRegistry()
        mw = MpWorld(3)
        distributed_eta(h, part, scale, M, blk, mw,
                        counters=merged, metrics=metrics)

        # local nnz and rows partition the global ones exactly, so the
        # merged minimum-traffic charges equal the serial run to the byte
        assert merged.bytes_loaded == serial.bytes_loaded
        assert merged.bytes_stored == serial.bytes_stored
        assert merged.flops == serial.flops
        # only the call tallies scale with the rank count
        assert merged.calls["spmmv"] == 3 * serial.calls["spmmv"]
        # per-worker metrics arrive rank-tagged with matching traffic
        for p in range(3):
            t = metrics.timers[f"rank{p}.aug_spmmv"]
            assert t.count == M // 2 - 1
            nbytes, nflops = metrics.span_traffic(f"rank{p}.aug_spmmv")
            assert nbytes and nflops
        # the raw per-rank snapshots stay inspectable on the world
        assert mw.last_obs is not None and len(mw.last_obs) == 3

    def test_mp_counters_equal_sim_counters(self, system):
        from repro.obs import MetricsRegistry
        from repro.util.counters import PerfCounters

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        c_mp, c_sim = PerfCounters(), PerfCounters()
        distributed_eta(h, part, scale, M, blk, MpWorld(2),
                        counters=c_mp, metrics=MetricsRegistry())
        distributed_eta(h, part, scale, M, blk, SimWorld(2),
                        counters=c_sim)
        assert (c_mp.bytes_loaded, c_mp.bytes_stored, c_mp.flops) == (
            c_sim.bytes_loaded, c_sim.bytes_stored, c_sim.flops)
        assert c_mp.calls == c_sim.calls

    def test_null_sentinels_skip_obs_shipping(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2)
        distributed_eta(h, part, scale, M, blk, mw)
        assert mw.last_obs is None


class TestFailure:
    def test_worker_exception_raises_cleanly(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 3, align=4)
        mw = MpWorld(3)
        t0 = time.monotonic()
        with pytest.raises(SimulationError, match="injected fault in rank 1"):
            mp_eta(h, part, scale, M, blk, mw, _fault=(1, 3, "raise"))
        # the aborted barrier unblocks peers immediately — no timeout wait
        assert time.monotonic() - t0 < mw.timeout / 2
        assert not any(segment_exists(nm) for nm in mw.last_segment_names)

    def test_worker_hard_death_raises_cleanly(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2)
        t0 = time.monotonic()
        with pytest.raises(SimulationError, match="exit code"):
            mp_eta(h, part, scale, M, blk, mw, _fault=(0, 2, "exit"))
        assert time.monotonic() - t0 < mw.timeout / 2
        assert not any(segment_exists(nm) for nm in mw.last_segment_names)


class TestTimeouts:
    """The MpTimeouts knob and its legacy single-number mapping."""

    def test_defaults(self):
        from repro.dist.mp import MpTimeouts

        t = MpTimeouts()
        assert t.barrier == 120.0 and t.stall == 120.0
        assert t.join == 5.0 and t.run is None

    def test_legacy_timeout_maps_onto_all_knobs(self):
        from repro.dist.mp import MpTimeouts

        mw = MpWorld(2, timeout=33.0)
        assert mw.timeouts == MpTimeouts(barrier=33.0, stall=33.0, run=33.0)
        assert mw.timeout == 33.0  # the back-compat property

    def test_timeout_and_timeouts_are_mutually_exclusive(self):
        from repro.dist.mp import MpTimeouts

        with pytest.raises(ValueError, match="either timeouts"):
            MpWorld(2, timeout=10.0, timeouts=MpTimeouts())

    @pytest.mark.parametrize("kw", [
        {"barrier": 0.0}, {"join": -1.0}, {"stall": 0.0}, {"run": 0.0},
    ])
    def test_rejects_non_positive(self, kw):
        from repro.dist.mp import MpTimeouts

        with pytest.raises(ValueError):
            MpTimeouts(**kw)

    def test_stall_detected_by_heartbeat(self, system):
        from repro.dist.mp import MpTimeouts
        from repro.resil import FaultPlan
        from repro.util.errors import WorkerFailure

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2, timeouts=MpTimeouts(stall=1.0))
        t0 = time.monotonic()
        with pytest.raises(WorkerFailure) as ei:
            mp_eta(h, part, scale, M, blk, mw,
                   fault_plan=FaultPlan.parse("stall:rank=1,m=3"))
        # the heartbeat monitor fires on the stall budget, not the (much
        # longer) barrier timeout
        assert time.monotonic() - t0 < 30.0
        assert "stall" in ei.value.kinds
        assert not any(segment_exists(nm) for nm in mw.last_segment_names)


class TestCheckpointing:
    """Parent-side salvage and bitwise resume of the mp engine."""

    def test_structured_failure_carries_resume_state(self, system, tmp_path):
        from repro.resil import FaultPlan
        from repro.util.errors import WorkerFailure

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2)
        with pytest.raises(WorkerFailure) as ei:
            mp_eta(h, part, scale, M, blk, mw,
                   fault_plan=FaultPlan.parse("crash:rank=1,m=7"),
                   checkpoint_every=3, checkpoint_path=tmp_path / "ck.npz")
        exc = ei.value
        # machine-readable payload: who died, how, and where to resume
        assert exc.kinds == {"death"}
        assert any(f.rank == 1 and f.exit_code == 3 for f in exc.failures)
        # checkpoints land at m=3 and m=6; the crash at m=7 salvages m=6
        assert exc.resume_m == 7
        assert mw.last_checkpoint is not None
        assert mw.last_checkpoint.next_m == 7
        assert (tmp_path / "ck.npz").exists()

    def test_resume_is_bitwise(self, system, tmp_path):
        from repro.core.checkpoint import KpmCheckpoint
        from repro.resil import FaultPlan
        from repro.util.errors import WorkerFailure

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, M, blk, MpWorld(2))
        p = tmp_path / "ck.npz"
        with pytest.raises(WorkerFailure):
            mp_eta(h, part, scale, M, blk, MpWorld(2),
                   fault_plan=FaultPlan.parse("crash:rank=0,m=8"),
                   checkpoint_every=3, checkpoint_path=p)
        ck = KpmCheckpoint.load(p)
        assert 1 < ck.next_m < M // 2
        resumed = distributed_eta(h, part, scale, M, blk, MpWorld(2),
                                  resume_from=ck)
        assert np.array_equal(resumed, ref)

    def test_completed_run_checkpoints_match_full(self, system, tmp_path):
        """Checkpointing a healthy run neither perturbs nor loses moments."""
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, M, blk, MpWorld(2))
        mw = MpWorld(2)
        eta = distributed_eta(h, part, scale, M, blk, mw,
                              checkpoint_every=4,
                              checkpoint_path=tmp_path / "ck.npz")
        assert np.array_equal(eta, ref)
        assert mw.last_checkpoint is not None
        assert not any(segment_exists(nm) for nm in mw.last_segment_names)

    def test_legacy_fault_tuple_still_works(self, system):
        """The old test-only ``_fault`` hook maps onto the fault plan."""
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        mw = MpWorld(2)
        with pytest.raises(SimulationError, match="injected fault in rank 1"):
            mp_eta(h, part, scale, M, blk, mw, _fault=(1, 3, "raise"))


class TestValidation:
    def test_world_size_mismatch(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        with pytest.raises(SimulationError):
            distributed_eta(h, part, scale, M, blk, MpWorld(3))

    def test_bad_reduction(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 1)
        with pytest.raises(ValueError):
            distributed_eta(
                h, part, scale, M, blk, MpWorld(1), reduction="sometimes"
            )

    def test_bad_device_label(self):
        with pytest.raises(SimulationError):
            MpWorld(2, devices=["cpu", "tpu"])

    def test_backend_list_wrong_length(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        with pytest.raises(SimulationError):
            distributed_eta(
                h, part, scale, M, blk, MpWorld(2, backend=["numpy"])
            )

    def test_partition_required(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError):
            distributed_eta(h, None, scale, M, blk, MpWorld(1))


class TestSolverFacade:
    def test_solver_dist_engines_agree(self, system):
        from repro.core.solver import KPMSolver

        h, scale, _, _ = system
        kw = dict(n_moments=16, n_vectors=2, seed=9, scale=scale)
        mu_serial = KPMSolver(h, **kw).moments()
        s_sim = KPMSolver(h, dist_engine="sim", workers=2, **kw)
        s_mp = KPMSolver(h, dist_engine="mp", workers=2, **kw)
        mu_sim = s_sim.moments()
        mu_mp = s_mp.moments()
        assert np.allclose(mu_sim, mu_serial, atol=1e-9)
        assert np.allclose(mu_mp, mu_sim, atol=1e-12, rtol=0)
        # the facade exposes the communicator of the last solve
        assert s_mp.world is not None and s_mp.world.log.n_messages > 0
        assert s_mp.world.log.records == s_sim.world.log.records

    def test_solver_rejects_bad_engine(self, system):
        from repro.core.solver import KPMSolver

        h, _, _, _ = system
        with pytest.raises(ValueError):
            KPMSolver(h, dist_engine="mpi")

    def test_solver_rejects_sell_for_distributed(self, system):
        from repro.core.solver import KPMSolver
        from repro.sparse.sell import SellMatrix

        h, _, _, _ = system
        s = SellMatrix(h, chunk_height=8, sigma=16)
        with pytest.raises(ValueError, match="CSR"):
            KPMSolver(s, dist_engine="sim")
