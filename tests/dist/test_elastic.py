"""Elastic execution: grid-eta invariance, cross-worker resume, policy.

The elastic contract (DESIGN §11): under ``eta_grid=B`` the eta
reduction order depends only on ``(N, B)``, so *any* sequence of
repartitions, worker-count changes, and checkpoint splices returns fp64
moments bitwise identical to an uninterrupted run on any fixed
grid-aligned partition.  These tests pin that contract — plus the
accounting one: every segment's measured Table-I counters equal
:func:`repro.perf.report.expected_segment_counters` exactly, on both
halves of a cross-worker-count resume.
"""

import numpy as np
import pytest

from repro.core.checkpoint import KpmCheckpoint
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.elastic import (
    ElasticReport,
    MembershipPlan,
    RebalanceMonitor,
    RebalancePolicy,
    elastic_eta,
    resolve_rebalance,
)
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.mp import MpWorld
from repro.dist.partition import RowPartition
from repro.perf.report import expected_segment_counters
from repro.util.counters import PerfCounters
from repro.util.errors import CheckpointError, SimulationError

M = 24  # half = 12 inner iterations
G = 32  # eta grid (rows per block)
R = 4
STOP = 7  # interrupt boundary for the resume tests


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(8, 6, 4)  # 768 rows = 24 grid blocks
    scale = lanczos_scale(h, seed=1)
    blk = make_block_vector(h.n_rows, R, seed=2)
    part1 = RowPartition.equal(h.n_rows, 1, align=G)
    ref = distributed_eta(h, part1, scale, M, blk, SimWorld(1), eta_grid=G)
    return h, scale, blk, ref


class TestGridInvariance:
    """eta is a pure function of (problem, N, B) — not of the partition."""

    @pytest.mark.parametrize("weights", [
        None,  # equal split over 2 ranks
        [0.5, 0.5, 0.0001, 0.4999],  # extreme skew over 4
        [0.6, 0.1, 0.3],
    ])
    def test_sim_partition_independent(self, system, weights):
        h, scale, blk, ref = system
        if weights is None:
            part = RowPartition.equal(h.n_rows, 2, align=G)
        else:
            part = RowPartition.from_weights(h.n_rows, weights, align=G)
        eta = distributed_eta(
            h, part, scale, M, blk, SimWorld(part.n_ranks), eta_grid=G
        )
        assert np.array_equal(eta, ref)

    def test_mp_matches_sim_bitwise(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 3, align=G)
        mw = MpWorld(3)
        eta = distributed_eta(h, part, scale, M, blk, mw, eta_grid=G)
        assert np.array_equal(eta, ref)

    def test_grid_requires_aligned_partition(self, system):
        h, scale, blk, _ = system
        part = RowPartition.from_weights(h.n_rows, [0.55, 0.45], align=4)
        assert any(o % G for o in part.offsets[1:-1])  # genuinely unaligned
        with pytest.raises(SimulationError, match="aligned"):
            distributed_eta(
                h, part, scale, M, blk, SimWorld(2), eta_grid=G
            )


def run_segmented(h, scale, blk, ref, tmp_path, world_cls,
                  resume_workers, weights):
    """Interrupt a 4-worker run at STOP, resume on ``resume_workers``.

    Returns (eta, first-half counters, second-half counters, worlds).
    """
    path = tmp_path / "boundary.npz"
    part4 = RowPartition.equal(h.n_rows, 4, align=G)
    c1 = PerfCounters()
    w1 = world_cls(4)
    distributed_eta(
        h, part4, scale, M, blk, w1, counters=c1, eta_grid=G,
        stop_m=STOP, checkpoint_every=STOP - 1, checkpoint_path=path,
    )
    ck = KpmCheckpoint.load(path)
    assert ck.next_m == STOP and ck.eta_grid == G

    if weights is None:
        part = RowPartition.equal(h.n_rows, resume_workers, align=G)
    else:
        part = RowPartition.from_weights(h.n_rows, weights, align=G)
    c2 = PerfCounters()
    w2 = world_cls(resume_workers)
    eta = distributed_eta(
        h, part, scale, M, blk, w2, counters=c2, eta_grid=G,
        resume_from=ck, stop_m=M // 2,
    )
    return eta, c1, c2, (w1, w2)


class TestCrossWorkerResume:
    """Interrupt at 4 workers, resume at 2 or 3 — bitwise, exact traffic."""

    @pytest.mark.parametrize("resume_workers,weights", [
        (2, None),
        (3, None),
        (2, [0.7, 0.3]),
        (3, [0.5, 0.125, 0.375]),
    ])
    def test_sim_resume(self, system, tmp_path, resume_workers, weights):
        h, scale, blk, ref = system
        eta, c1, c2, _ = run_segmented(
            h, scale, blk, ref, tmp_path, SimWorld, resume_workers, weights
        )
        assert np.array_equal(eta, ref)
        # both halves' measured counters equal the Eq. 5-7 analytic
        # charge of their segment, exactly
        e1 = expected_segment_counters(h, M, R, first_m=1, stop_m=STOP,
                                       eta_grid=G)
        e2 = expected_segment_counters(h, M, R, first_m=STOP, stop_m=M // 2,
                                       eta_grid=G)
        assert (c1.bytes_loaded, c1.bytes_stored, c1.flops) == \
            (e1.bytes_loaded, e1.bytes_stored, e1.flops)
        assert (c2.bytes_loaded, c2.bytes_stored, c2.flops) == \
            (e2.bytes_loaded, e2.bytes_stored, e2.flops)

    def test_mp_resume_matches_sim(self, system, tmp_path):
        h, scale, blk, ref = system
        eta_mp, m1, m2, (w1, w2) = run_segmented(
            h, scale, blk, ref, tmp_path, MpWorld, 2, None
        )
        assert np.array_equal(eta_mp, ref)
        eta_sim, s1, s2, (v1, v2) = run_segmented(
            h, scale, blk, ref, tmp_path, SimWorld, 2, None
        )
        # per-half counters and message logs agree engine-for-engine
        assert (m1.bytes_total, m1.flops) == (s1.bytes_total, s1.flops)
        assert (m2.bytes_total, m2.flops) == (s2.bytes_total, s2.flops)
        assert w1.log.records == v1.log.records
        assert w2.log.records == v2.log.records

    def test_constant_worker_segments_sum_to_full_run(self, system,
                                                      tmp_path):
        """With P fixed, the halves' logs sum to the uninterrupted log."""
        h, scale, blk, ref = system
        eta, c1, c2, (w1, w2) = run_segmented(
            h, scale, blk, ref, tmp_path, SimWorld, 4, None
        )
        assert np.array_equal(eta, ref)
        full = SimWorld(4)
        part4 = RowPartition.equal(h.n_rows, 4, align=G)
        distributed_eta(h, part4, scale, M, blk, full, eta_grid=G)
        assert (w1.log.total_bytes + w2.log.total_bytes
                == full.log.total_bytes)

    def test_cross_grid_resume_refused(self, system, tmp_path):
        h, scale, blk, _ = system
        path = tmp_path / "boundary.npz"
        part = RowPartition.equal(h.n_rows, 2, align=G)
        distributed_eta(
            h, part, scale, M, blk, SimWorld(2), eta_grid=G,
            stop_m=STOP, checkpoint_every=STOP - 1, checkpoint_path=path,
        )
        with pytest.raises(CheckpointError, match="eta_grid"):
            distributed_eta(
                h, part, scale, M, blk, SimWorld(2), eta_grid=16,
                resume_from=path, stop_m=M // 2,
            )


class TestElasticDriver:
    def test_plain_sim_run_bitwise(self, system):
        h, scale, blk, ref = system
        pol = RebalancePolicy(grid=G, interval=5)
        eta, rep = elastic_eta(
            h, scale, M, blk, n_workers=3, policy=pol, engine="sim"
        )
        assert np.array_equal(eta, ref)
        assert isinstance(rep, ElasticReport)
        assert [s.first_m for s in rep.segments] == [1, 6, 11]
        assert rep.final_n_workers == 3 and rep.rebalances == 0

    def test_join_and_leave_plan(self, system):
        h, scale, blk, ref = system
        pol = RebalancePolicy(grid=G, interval=4)
        eta, rep = elastic_eta(
            h, scale, M, blk, n_workers=2, policy=pol, engine="sim",
            membership="join:m=5,ranks=2;leave:m=9,rank=0",
        )
        assert np.array_equal(eta, ref)
        assert rep.joins == 2 and rep.leaves == 1
        assert rep.final_n_workers == 3
        # boundaries land exactly on the planned iterations
        assert {s.stop_m for s in rep.segments} >= {5, 9}

    def test_timer_driven_rebalance(self, system):
        h, scale, blk, ref = system
        pol = RebalancePolicy(grid=G, interval=4, windows=2)
        slow = lambda p, nn: nn * (4.0 if p == 0 else 1.0)  # noqa: E731
        eta, rep = elastic_eta(
            h, scale, M, blk, n_workers=3, policy=pol, engine="sim",
            timer=slow,
        )
        assert np.array_equal(eta, ref)
        assert rep.rebalances >= 1
        first, last = rep.segments[0], rep.segments[-1]
        rows0_before = first.offsets[1] - first.offsets[0]
        rows0_after = last.offsets[1] - last.offsets[0]
        assert rows0_after < rows0_before
        assert last.imbalance < first.imbalance

    def test_counters_match_segment_model(self, system):
        h, scale, blk, _ = system
        pol = RebalancePolicy(grid=G, interval=5)
        c = PerfCounters()
        _eta, rep = elastic_eta(
            h, scale, M, blk, n_workers=2, policy=pol, engine="sim",
            counters=c,
        )
        exp = PerfCounters()
        for seg in rep.segments:
            exp.merge(expected_segment_counters(
                h, M, R, first_m=seg.first_m, stop_m=seg.stop_m, eta_grid=G,
            ))
        assert (c.bytes_loaded, c.bytes_stored, c.flops) == \
            (exp.bytes_loaded, exp.bytes_stored, exp.flops)

    def test_resume_from_boundary_checkpoint(self, system, tmp_path):
        """An elastic run interrupted at a boundary resumes bitwise."""
        h, scale, blk, ref = system
        pol = RebalancePolicy(grid=G, interval=5)
        path = tmp_path / "boundary.npz"
        part = RowPartition.equal(h.n_rows, 2, align=G)
        distributed_eta(
            h, part, scale, M, blk, SimWorld(2), eta_grid=G,
            stop_m=6, checkpoint_every=5, checkpoint_path=path,
        )
        eta, rep = elastic_eta(
            h, scale, M, blk, n_workers=3, policy=pol, engine="sim",
            resume_from=path,
        )
        assert np.array_equal(eta, ref)
        assert rep.segments[0].first_m == 6

    def test_bad_inputs(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError, match="engine"):
            elastic_eta(h, scale, M, blk, n_workers=2, engine="serial")
        with pytest.raises(ValueError, match="n_workers"):
            elastic_eta(h, scale, M, blk, n_workers=0)
        with pytest.raises(ValueError, match="weights"):
            elastic_eta(h, scale, M, blk, n_workers=2, weights=[1.0],
                        engine="sim")
        with pytest.raises(SimulationError, match="retires"):
            elastic_eta(
                h, scale, M, blk, n_workers=1, engine="sim",
                policy=RebalancePolicy(grid=G, interval=4),
                membership="leave:m=5,rank=0",
            )


class TestPolicyAndPlan:
    def test_resolve_rebalance(self):
        assert resolve_rebalance(None) is None
        assert resolve_rebalance(False) is None
        assert resolve_rebalance("off") is None
        assert resolve_rebalance("") is None
        assert resolve_rebalance(True) == RebalancePolicy()
        assert resolve_rebalance("auto") == RebalancePolicy()
        assert resolve_rebalance(0.4).threshold == 0.4
        assert resolve_rebalance("0.4").threshold == 0.4
        pol = RebalancePolicy(grid=16)
        assert resolve_rebalance(pol) is pol
        with pytest.raises(ValueError):
            resolve_rebalance("sideways")
        with pytest.raises(TypeError):
            resolve_rebalance([1, 2])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RebalancePolicy(grid=0)
        with pytest.raises(ValueError):
            RebalancePolicy(threshold=-1)
        with pytest.raises(ValueError):
            RebalancePolicy(windows=0)
        with pytest.raises(ValueError):
            RebalancePolicy(damping=0)

    def test_plan_parse_roundtrip(self):
        plan = MembershipPlan.parse("leave:m=16,rank=0; join:m=8,ranks=2")
        assert plan.boundaries() == [8, 16]
        assert [s.kind for s in plan.specs] == ["join", "leave"]  # sorted
        assert plan.at(8)[0].ranks == 2
        assert str(plan) == "join:m=8,ranks=2;leave:m=16,rank=0"
        assert MembershipPlan.parse(str(plan)) == plan
        assert not MembershipPlan.parse("")

    def test_plan_parse_errors(self):
        with pytest.raises(ValueError, match="m="):
            MembershipPlan.parse("join:ranks=2")
        with pytest.raises(ValueError, match="malformed"):
            MembershipPlan.parse("join:m=8,delay=2")
        with pytest.raises(ValueError, match="kind"):
            MembershipPlan.parse("resize:m=8")

    def test_monitor_debounce_and_retune(self):
        pol = RebalancePolicy(grid=16, threshold=0.5, windows=2)
        mon = RebalanceMonitor(pol)
        counts = [64, 64]
        assert mon.observe(counts, [1.0, 4.0]) == pytest.approx(1.2)
        assert not mon.should_rebalance  # one window is not enough
        mon.observe(counts, [1.0, 1.1])  # calm segment resets the streak
        mon.observe(counts, [1.0, 4.0])
        assert not mon.should_rebalance
        mon.observe(counts, [1.0, 4.0])
        assert mon.should_rebalance
        result = mon.retune(128, [0.5, 0.5])
        # rank 1 measured 4x slower -> it gets fewer rows
        assert result.weights[1] < result.weights[0]
        assert sum(result.weights) == pytest.approx(1.0)
        assert not mon.should_rebalance  # retune resets the streak

    def test_monitor_ignores_zero_busy(self):
        mon = RebalanceMonitor(RebalancePolicy(windows=1))
        mon.observe([64, 64], [0.0, 1.0])  # dead clock: not a skew signal
        assert not mon.should_rebalance
