"""Task-mode (overlapped) execution: split properties and engine parity.

The overlapped schedule computes the interior block while the halo
exchange is in flight, then the boundary block.  Because the eta
reduction order is fixed (interior partial + boundary partial) the
result is schedule-independent: the mp engine under overlap must equal
the sequential simulator bitwise, and both must match the synchronous
path to reduction-order tolerance.  The split itself is property-tested
over random partitions, and the resilience layer (checkpoints, fault
injection) must behave identically with overlap enabled.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moments import compute_eta
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.halo import partition_matrix
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.mp import MpWorld, mp_eta
from repro.dist.overlap import OVERLAP_CHOICES, resolve_overlap, task_split
from repro.dist.partition import RowPartition
from repro.dist.shm import segment_exists
from repro.sparse.backend.native import native_available

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

M = 24


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(8, 6, 4)
    scale = lanczos_scale(h, seed=1)
    blk = make_block_vector(h.n_rows, 4, seed=2)
    ref = compute_eta(h, scale, M, blk, "aug_spmmv")
    return h, scale, blk, ref


@pytest.fixture(scope="module")
def lattice():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(6, 5, 4)
    return h


# ---------------------------------------------------------------------
# the split, property-tested over random partitions
# ---------------------------------------------------------------------

@given(
    weights=st.lists(st.floats(0.05, 10.0), min_size=1, max_size=6),
    align=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_task_split_invariants(lattice, weights, align):
    """Interior and boundary partition the local rows for any cut."""
    part = RowPartition.from_weights(lattice.n_rows, weights, align=align)
    d = partition_matrix(lattice, part)
    for blk in d.blocks:
        s = task_split(blk)
        mat = blk.matrix
        # interior ∪ boundary = all local rows, no duplicates
        interior = np.arange(s.row0, s.row1)
        combined = np.sort(np.concatenate([interior, s.boundary]))
        assert np.array_equal(combined, np.arange(blk.n_local))
        assert np.array_equal(s.boundary, np.sort(np.unique(s.boundary)))
        # interior rows reference only local columns — the whole point:
        # they can run before the halo arrives
        lo, hi = int(mat.indptr[s.row0]), int(mat.indptr[s.row1])
        if hi > lo:
            assert int(mat.indices[lo:hi].max()) < blk.n_local
        # nnz bookkeeping is consistent with the matrix
        assert s.nnz_interior == hi - lo
        assert s.nnz_interior + s.nnz_boundary == mat.nnz
        assert 0.0 <= s.interior_fraction <= 1.0


@given(
    weights=st.lists(st.floats(0.1, 4.0), min_size=2, max_size=4),
    r=st.sampled_from([1, 2, 5]),
)
@settings(max_examples=20, deadline=None)
def test_two_phase_matches_plain(lattice, weights, r):
    """Split step == plain fused step on every rank of any partition."""
    from repro.sparse.backend import get_backend

    part = RowPartition.from_weights(lattice.n_rows, weights, align=2)
    d = partition_matrix(lattice, part)
    bk = get_backend("numpy")
    a, b = 0.37, 0.05
    rng = np.random.default_rng(23)
    x_global = np.ascontiguousarray(
        rng.normal(size=(lattice.n_rows, r))
        + 1j * rng.normal(size=(lattice.n_rows, r))
    )
    for blk in d.blocks:
        xbuf = np.ascontiguousarray(np.vstack([
            x_global[blk.row_start:blk.row_stop], x_global[blk.halo_global],
        ]))
        w0 = np.ascontiguousarray(
            rng.normal(size=(blk.n_local, r))
            + 1j * rng.normal(size=(blk.n_local, r))
        )
        wp, ws = w0.copy(), w0.copy()
        ee_p, eo_p = bk.aug_spmmv_step(blk.matrix, xbuf, wp, a, b)
        plan = bk.split_plan(blk.matrix, task_split(blk), r)
        ee_s, eo_s = bk.aug_spmmv_split_step(blk.matrix, xbuf, ws, a, b, plan)
        assert np.array_equal(wp, ws)  # row-local update: bitwise
        assert np.allclose(ee_s, ee_p, rtol=1e-12, atol=1e-10)
        assert np.allclose(eo_s, eo_p, rtol=1e-12, atol=1e-10)


# ---------------------------------------------------------------------
# the knob
# ---------------------------------------------------------------------

class TestResolveOverlap:
    def test_auto_follows_rank_count(self):
        assert resolve_overlap("auto", 1) is False
        assert resolve_overlap(None, 1) is False
        assert resolve_overlap("auto", 2) is True
        assert resolve_overlap(None, 3) is True

    def test_explicit(self):
        assert resolve_overlap("on", 1) is True
        assert resolve_overlap("off", 4) is False
        assert resolve_overlap(True, 1) is True
        assert resolve_overlap(False, 4) is False

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="overlap"):
            resolve_overlap("sometimes", 2)
        assert set(OVERLAP_CHOICES) == {"off", "on", "auto"}


# ---------------------------------------------------------------------
# engine parity under overlap
# ---------------------------------------------------------------------

def run_overlap_pair(h, scale, blk, part, m=M, **kw):
    """The same overlapped problem through MpWorld and SimWorld."""
    mw = MpWorld(part.n_ranks)
    eta_mp = distributed_eta(h, part, scale, m, blk, mw, overlap=True, **kw)
    sw = SimWorld(part.n_ranks)
    eta_sim = distributed_eta(h, part, scale, m, blk, sw, overlap=True, **kw)
    return eta_mp, eta_sim, mw, sw


class TestOverlapParity:
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_mp_equals_sim_bitwise(self, system, n_workers):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, n_workers, align=4)
        eta_mp, eta_sim, mw, sw = run_overlap_pair(h, scale, blk, part)
        # the fixed interior+boundary reduction order makes the moments
        # schedule-independent: real async execution == sequential sim
        assert np.array_equal(eta_mp, eta_sim)
        assert np.allclose(eta_mp, ref, atol=1e-9)
        # the message accounting is unchanged by the schedule
        assert mw.log.records == sw.log.records

    def test_on_matches_off(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 3, align=4)
        sw = SimWorld(3)
        eta_on = distributed_eta(h, part, scale, M, blk, sw, overlap=True)
        eta_off = distributed_eta(h, part, scale, M, blk, SimWorld(3),
                                  overlap=False)
        assert np.allclose(eta_on, eta_off, atol=1e-12, rtol=0)

    def test_overlap_string_knob(self, system):
        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_on = distributed_eta(h, part, scale, M, blk, SimWorld(2),
                                 overlap="on")
        eta_auto = distributed_eta(h, part, scale, M, blk, SimWorld(2),
                                   overlap="auto")
        # auto resolves to on for a multi-rank world: identical schedule
        assert np.array_equal(eta_on, eta_auto)

    @needs_native
    def test_native_backend_bitwise(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, _, _ = run_overlap_pair(
            h, scale, blk, part, backend="native"
        )
        assert np.array_equal(eta_mp, eta_sim)
        assert np.allclose(eta_mp, ref, atol=1e-9)

    def test_reduction_every(self, system):
        h, scale, blk, ref = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, mw, sw = run_overlap_pair(
            h, scale, blk, part, reduction="every"
        )
        assert np.array_equal(eta_mp, eta_sim)
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert mw.log.records == sw.log.records

    @pytest.mark.parametrize("r", [1, 8])
    def test_block_widths(self, system, r):
        h, scale, _, _ = system
        m = 8
        blk = make_block_vector(h.n_rows, r, seed=7)
        ref = compute_eta(h, scale, m, blk, "aug_spmmv")
        part = RowPartition.equal(h.n_rows, 2, align=4)
        eta_mp, eta_sim, _, _ = run_overlap_pair(h, scale, blk, part, m=m)
        assert eta_mp.shape == (r, m)
        assert np.array_equal(eta_mp, eta_sim)
        assert np.allclose(eta_mp, ref, atol=1e-9)

    def test_skewed_weights(self, system):
        h, scale, blk, ref = system
        part = RowPartition.from_weights(h.n_rows, [0.6, 0.1, 0.3], align=4)
        eta_mp, eta_sim, mw, sw = run_overlap_pair(h, scale, blk, part)
        assert np.array_equal(eta_mp, eta_sim)
        assert np.allclose(eta_mp, ref, atol=1e-9)
        assert mw.log.records == sw.log.records


class TestOverlapObservability:
    def test_pack_and_wait_spans(self, system):
        """Overlap splits halo_exchange into halo_pack + halo_wait, and
        the kernel time into the two phase spans."""
        from repro.obs import MetricsRegistry

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        metrics = MetricsRegistry()
        mw = MpWorld(2)
        distributed_eta(h, part, scale, M, blk, mw, overlap=True,
                        metrics=metrics)
        for p in range(2):
            for span in ("halo_pack", "halo_wait",
                         "aug_spmmv_int", "aug_spmmv_bnd"):
                assert metrics.timers[f"rank{p}.{span}"].count > 0, \
                    f"missing span rank{p}.{span}"
        assert "rank0.halo_exchange" not in metrics.timers

    def test_counters_equal_serial(self, system):
        """Splitting the kernels must not change the traffic totals."""
        from repro.util.counters import PerfCounters

        h, scale, blk, _ = system
        serial = PerfCounters()
        compute_eta(h, scale, M, blk, "aug_spmmv", serial)
        c = PerfCounters()
        part = RowPartition.equal(h.n_rows, 3, align=4)
        distributed_eta(h, part, scale, M, blk, SimWorld(3),
                        overlap=True, counters=c)
        assert c.bytes_loaded == serial.bytes_loaded
        assert c.bytes_stored == serial.bytes_stored
        assert c.flops == serial.flops
        assert set(c.calls) == {"spmmv", "aug_spmmv_int", "aug_spmmv_bnd"}


# ---------------------------------------------------------------------
# resilience under overlap
# ---------------------------------------------------------------------

class TestOverlapResilience:
    def test_worker_crash_surfaces_fast(self, system):
        from repro.resil import FaultPlan
        from repro.util.errors import WorkerFailure

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 3, align=4)
        mw = MpWorld(3)
        with pytest.raises(WorkerFailure):
            mp_eta(h, part, scale, M, blk, mw, overlap=True,
                   fault_plan=FaultPlan.parse("crash:rank=1,m=8"))
        assert not any(segment_exists(nm) for nm in mw.last_segment_names)

    def test_resume_is_bitwise(self, system, tmp_path):
        from repro.core.checkpoint import KpmCheckpoint
        from repro.resil import FaultPlan
        from repro.util.errors import WorkerFailure

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, M, blk, MpWorld(2),
                              overlap=True)
        p = tmp_path / "ck.npz"
        with pytest.raises(WorkerFailure):
            mp_eta(h, part, scale, M, blk, MpWorld(2), overlap=True,
                   fault_plan=FaultPlan.parse("crash:rank=0,m=8"),
                   checkpoint_every=3, checkpoint_path=p)
        ck = KpmCheckpoint.load(p)
        resumed = distributed_eta(h, part, scale, M, blk, MpWorld(2),
                                  overlap=True, resume_from=ck)
        assert np.array_equal(resumed, ref)

    def test_cross_mode_resume(self, system, tmp_path):
        """A checkpoint written under overlap resumes synchronously —
        the state is engine- and schedule-agnostic."""
        from repro.core.checkpoint import KpmCheckpoint
        from repro.resil import FaultPlan
        from repro.util.errors import WorkerFailure

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, M, blk, SimWorld(2),
                              overlap=False)
        p = tmp_path / "ck.npz"
        with pytest.raises(WorkerFailure):
            mp_eta(h, part, scale, M, blk, MpWorld(2), overlap=True,
                   fault_plan=FaultPlan.parse("crash:rank=0,m=8"),
                   checkpoint_every=3, checkpoint_path=p)
        ck = KpmCheckpoint.load(p)
        resumed = distributed_eta(h, part, scale, M, blk, SimWorld(2),
                                  overlap=False, resume_from=ck)
        assert np.allclose(resumed, ref, atol=1e-12, rtol=0)


# ---------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------

class TestSolverOverlap:
    def test_solver_overlap_matches_sync(self, system):
        from repro.core.solver import KPMSolver

        h, scale, _, _ = system
        kw = dict(n_moments=16, n_vectors=2, seed=9, scale=scale,
                  dist_engine="mp", workers=2)
        mu_on = KPMSolver(h, overlap="on", **kw).moments()
        mu_off = KPMSolver(h, overlap="off", **kw).moments()
        assert np.allclose(mu_on, mu_off, atol=1e-12, rtol=0)

    def test_solver_validates_overlap_eagerly(self, system):
        from repro.core.solver import KPMSolver

        h, _, _, _ = system
        with pytest.raises(ValueError, match="overlap"):
            KPMSolver(h, overlap="sometimes")
