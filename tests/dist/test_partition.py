"""Row partitioning: weighted blocks, alignment, lookups."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.partition import RowPartition, weights_from_performance
from repro.util.errors import PartitionError


class TestConstruction:
    def test_equal(self):
        p = RowPartition.equal(100, 4)
        assert np.array_equal(p.counts(), [25, 25, 25, 25])

    def test_weighted(self):
        p = RowPartition.from_weights(100, [3, 1])
        assert p.counts()[0] == 75

    def test_alignment(self):
        p = RowPartition.from_weights(100, [1, 1, 1], align=8)
        for off in p.offsets[1:-1]:
            assert off % 8 == 0
        assert p.offsets[-1] == 100

    def test_heterogeneous_guess(self):
        """Paper Section VI-B: weights from device Gflop/s."""
        w = weights_from_performance([57.5, 84.1])
        p = RowPartition.from_weights(1000, w, align=4)
        assert p.counts()[1] > p.counts()[0]
        assert p.imbalance(w) < 1.05

    def test_weights_validated(self):
        with pytest.raises(PartitionError):
            RowPartition.from_weights(10, [])
        with pytest.raises(PartitionError):
            RowPartition.from_weights(10, [-1, 2])
        with pytest.raises(PartitionError):
            RowPartition.from_weights(10, [0, 0])
        with pytest.raises(PartitionError):
            weights_from_performance([1.0, 0.0])

    def test_offsets_validated(self):
        with pytest.raises(PartitionError):
            RowPartition((1, 5))
        with pytest.raises(PartitionError):
            RowPartition((0, 5, 3))
        with pytest.raises(PartitionError):
            RowPartition((0,))


class TestLookups:
    @pytest.fixture
    def part(self):
        return RowPartition((0, 10, 10, 25, 40))

    def test_counts(self, part):
        assert np.array_equal(part.counts(), [10, 0, 15, 15])

    def test_bounds(self, part):
        assert part.bounds(2) == (10, 25)
        with pytest.raises(PartitionError):
            part.bounds(4)

    def test_owner_of(self, part):
        owners = part.owner_of([0, 9, 10, 24, 25, 39])
        assert owners.tolist() == [0, 0, 2, 2, 3, 3]

    def test_owner_skips_empty_rank(self, part):
        assert 1 not in set(part.owner_of(np.arange(40)).tolist())

    def test_owner_bounds_checked(self, part):
        with pytest.raises(PartitionError):
            part.owner_of([40])

    def test_to_local(self, part):
        assert np.array_equal(part.to_local([0, 12, 30]), [0, 2, 5])

    def test_imbalance_perfect(self):
        assert RowPartition.equal(100, 4).imbalance() == pytest.approx(1.0)


@given(
    st.integers(8, 500),
    st.lists(st.floats(0.05, 10.0), min_size=1, max_size=8),
    st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=80, deadline=None)
def test_partition_invariants(n_rows, weights, align):
    """Any weighted partition covers [0, n) contiguously without overlap."""
    p = RowPartition.from_weights(n_rows, weights, align=align)
    assert p.n_rows == n_rows
    assert p.offsets[0] == 0 and p.offsets[-1] == n_rows
    counts = p.counts()
    assert counts.sum() == n_rows
    assert np.all(counts >= 0)
    # every row owned exactly once
    owners = p.owner_of(np.arange(n_rows))
    for r in range(p.n_ranks):
        lo, hi = p.bounds(r)
        assert np.all(owners[lo:hi] == r)
