"""The observability layer: MetricsRegistry spans and the JSONL Trace."""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    TimerStat,
    Trace,
    aggregate_spans,
    read_trace,
)
from repro.util.counters import PerfCounters


class TestTimerStat:
    def test_record_accumulates(self):
        t = TimerStat()
        t.record(2.0)
        t.record(4.0)
        assert t.count == 2
        assert t.total == 6.0
        assert t.min == 2.0 and t.max == 4.0
        assert t.mean == 3.0

    def test_empty_mean_is_zero(self):
        assert TimerStat().mean == 0.0

    def test_dict_round_trip(self):
        t = TimerStat()
        t.record(1.5)
        t2 = TimerStat.from_dict(t.to_dict())
        assert t2 == t

    def test_merge(self):
        a, b = TimerStat(), TimerStat()
        a.record(1.0)
        b.record(3.0)
        b.record(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == 9.0
        assert a.min == 1.0 and a.max == 5.0


class TestSpans:
    def test_span_records_timer(self):
        m = MetricsRegistry()
        with m.span("work"):
            pass
        assert m.timers["work"].count == 1
        assert m.timers["work"].total >= 0.0

    def test_span_attributes_counter_traffic(self):
        m = MetricsRegistry()
        c = PerfCounters()
        with m.span("spmv", counters=c):
            c.charge("spmv", loads=100, stores=20, flops=60)
        assert m.counters["bytes.spmv"] == 120
        assert m.counters["flops.spmv"] == 60
        assert m.span_traffic("spmv") == (120, 60)

    def test_span_only_charges_inside_the_span(self):
        m = MetricsRegistry()
        c = PerfCounters()
        c.charge("before", loads=1000, flops=1000)
        with m.span("k", counters=c):
            c.charge("k", loads=8, flops=2)
        c.charge("after", loads=1000, flops=1000)
        assert m.counters["bytes.k"] == 8
        assert m.counters["flops.k"] == 2

    def test_span_traffic_resolves_rank_prefix(self):
        m = MetricsRegistry()
        m.count("rank0.bytes.spmv", 40)
        m.count("rank0.flops.spmv", 10)
        assert m.span_traffic("rank0.spmv") == (40, 10)

    def test_disabled_registry_records_nothing(self):
        m = MetricsRegistry(enabled=False)
        with m.span("k"):
            pass
        m.count("c")
        m.gauge("g", 1.0)
        assert not m.timers and not m.counters and not m.gauges

    def test_counters_and_gauges(self):
        m = MetricsRegistry()
        m.count("iters")
        m.count("iters", 4)
        m.gauge("ranks", 3)
        m.gauge("ranks", 5)
        assert m.counters["iters"] == 5
        assert m.gauges["ranks"] == 5

    def test_summary_mentions_balance(self):
        m = MetricsRegistry()
        c = PerfCounters()
        with m.span("k", counters=c):
            c.charge("k", loads=10, flops=5)
        s = m.summary()
        assert "k" in s and "B/F" in s


class TestMerge:
    def test_merge_snapshot_prefixed(self):
        w = MetricsRegistry()
        c = PerfCounters()
        with w.span("spmv", counters=c):
            c.charge("spmv", loads=16, flops=4)
        parent = MetricsRegistry()
        parent.merge_snapshot(w.snapshot(), prefix="rank2.")
        assert parent.timers["rank2.spmv"].count == 1
        assert parent.counters["rank2.bytes.spmv"] == 16
        assert parent.span_traffic("rank2.spmv") == (16, 4)

    def test_merge_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for m in (a, b):
            with m.span("k"):
                pass
            m.count("n", 2)
        a.merge(b)
        assert a.timers["k"].count == 2
        assert a.counters["n"] == 4

    def test_snapshot_is_json_serializable(self):
        m = MetricsRegistry()
        with m.span("k"):
            pass
        m.count("n", 3)
        m.gauge("g", 1.5)
        snap = json.loads(json.dumps(m.snapshot()))
        m2 = MetricsRegistry()
        m2.merge_snapshot(snap)
        assert m2.timers["k"].count == 1
        assert m2.counters["n"] == 3
        assert m2.gauges["g"] == 1.5


class TestDistributions:
    def test_observe_accumulates_spread(self):
        m = MetricsRegistry()
        for v in (4.0, 8.0, 2.0):
            m.observe("serve.batch.width", v)
        d = m.distributions["serve.batch.width"]
        assert d.count == 3
        assert d.min == 2.0
        assert d.max == 8.0
        assert d.mean == pytest.approx(14.0 / 3.0)

    def test_distribution_created_empty_on_access(self):
        m = MetricsRegistry()
        d = m.distribution("q.depth")
        assert d.count == 0 and d.mean == 0.0
        assert "q.depth" in m.distributions

    def test_snapshot_round_trip_includes_distributions(self):
        m = MetricsRegistry()
        m.observe("bpr", 100.0)
        m.observe("bpr", 50.0)
        snap = json.loads(json.dumps(m.snapshot()))
        assert snap["distributions"]["bpr"]["count"] == 2
        m2 = MetricsRegistry()
        m2.merge_snapshot(snap)
        assert m2.distributions["bpr"].min == 50.0
        assert m2.distributions["bpr"].max == 100.0

    def test_empty_registry_snapshot_omits_distributions(self):
        assert "distributions" not in MetricsRegistry().snapshot()

    def test_merge_prefixes_distributions(self):
        w = MetricsRegistry()
        w.observe("width", 4)
        parent = MetricsRegistry()
        parent.merge(w, prefix="rank1.")
        parent.merge(w, prefix="rank1.")
        d = parent.distributions["rank1.width"]
        assert d.count == 2 and d.max == 4

    def test_summary_renders_distributions(self):
        m = MetricsRegistry()
        m.observe("serve.batch.width", 8)
        text = m.summary()
        assert "serve.batch.width" in text
        assert "max 8" in text

    def test_disabled_registry_ignores_observe(self):
        m = MetricsRegistry(enabled=False)
        m.observe("x", 1.0)
        assert m.distributions == {}


class TestNullMetrics:
    def test_is_disabled_and_frozen(self):
        assert not NULL_METRICS.enabled
        with pytest.raises(AttributeError):
            NULL_METRICS.enabled = True
        with pytest.raises(AttributeError):
            NULL_METRICS.trace = object()

    def test_merge_cannot_corrupt(self):
        donor = MetricsRegistry()
        with donor.span("k"):
            pass
        donor.count("n", 99)
        NULL_METRICS.merge(donor)
        NULL_METRICS.merge_snapshot(donor.snapshot(), prefix="rank0.")
        assert NULL_METRICS.timers == {}
        assert NULL_METRICS.counters == {}

    def test_span_and_count_are_noops(self):
        with NULL_METRICS.span("k", phase="p") as sp:
            sp.note(anything=1)
        NULL_METRICS.count("c", 7)
        NULL_METRICS.gauge("g", 7)
        NULL_METRICS.observe("d", 7)
        assert NULL_METRICS.counters == {}
        assert NULL_METRICS.distributions == {}
        assert NULL_METRICS.gauges == {}


class TestTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Trace(path) as tr:
            tr.emit({"name": "a", "dt": 0.5, "bytes": 10, "flops": 4})
            tr.emit({"name": "a", "dt": 0.5, "bytes": 10, "flops": 4})
            tr.emit({"name": "b", "dt": 1.0})
        assert tr.n_records == 3
        records = read_trace(path)
        assert len(records) == 3
        assert all("ts" in r for r in records)

    def test_aggregate_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Trace(path) as tr:
            tr.emit({"name": "a", "dt": 0.5, "bytes": 10, "flops": 4})
            tr.emit({"name": "a", "dt": 0.25, "bytes": 6, "flops": 2})
        agg = aggregate_spans(read_trace(path))
        assert agg["a"]["count"] == 2
        assert agg["a"]["seconds"] == 0.75
        assert agg["a"]["bytes"] == 16
        assert agg["a"]["flops"] == 6

    def test_registry_emits_span_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        c = PerfCounters()
        with Trace(path) as tr:
            m = MetricsRegistry(trace=tr)
            with m.span("spmv", phase="moments", counters=c) as sp:
                c.charge("spmv", loads=80, stores=16, flops=24)
                sp.note(rows=12)
        (rec,) = read_trace(path)
        assert rec["name"] == "spmv"
        assert rec["phase"] == "moments"
        assert rec["bytes"] == 96 and rec["flops"] == 24
        assert rec["rows"] == 12
        assert rec["dt"] >= 0.0
