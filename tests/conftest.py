"""Shared fixtures: small reference matrices and RNGs."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.physics import build_topological_insulator
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="session", autouse=True)
def pinned_backend_selection():
    """Pin the kernel-backend environment for the whole session.

    The native loader caches its first load attempt process-wide, and
    ``REPRO_NATIVE_DISABLE`` is read at that moment — a test mutating the
    variable mid-session would silently flip which backend every *later*
    test (and every mp worker process, which inherits the environment)
    runs under.  This fixture snapshots the relevant variables and the
    resolved availability up front, restores the environment afterwards,
    and forces a clean reload so nothing leaks past the session.
    """
    from repro.sparse.backend.native import load_library, native_available

    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_NATIVE_DISABLE", "REPRO_NATIVE_CACHE", "CC")
    }
    availability = native_available()  # resolve (and cache) once, up front
    yield availability
    for key, val in saved.items():
        if val is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = val
    load_library(force_reload=True)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_hermitian_dense(rng, n: int, density: float = 0.25) -> np.ndarray:
    """A random complex Hermitian matrix with ~``density`` fill."""
    mask = rng.random((n, n)) < density
    d = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) * mask
    return d + d.conj().T


@pytest.fixture
def small_hermitian(rng):
    """A 40x40 random Hermitian CSR matrix plus its dense counterpart."""
    dense = random_hermitian_dense(rng, 40)
    return CSRMatrix.from_dense(dense), dense


@pytest.fixture(scope="session")
def ti_small():
    """A small TI Hamiltonian (N = 480) with its model (session-cached)."""
    return build_topological_insulator(6, 5, 4)


@pytest.fixture(scope="session")
def ti_periodic():
    """A fully periodic TI Hamiltonian: every row has exactly 13 nonzeros."""
    return build_topological_insulator(4, 4, 4, pbc=(True, True, True))
