"""Differential parity: coalesced batch solves vs independent solos.

The serving layer's correctness contract is that coalescing is
*invisible*: a request solved inside a width-k batch returns exactly
what it would have returned solved alone.  Under fp64 that means
bitwise-identical moments — the block kernels compute every column
independently and the ``REPRO_NOVEC`` pragmas keep the per-row dot
loops rounding identically at every width.  Under the narrow storage
profiles (fp32, fp16v) the dot *accumulation* is width-stable but the
fp64-promoting einsum path rounds shape-dependently, so the contract
weakens to tight tolerance.

Checked across every engine (serial / sim / mp) x backend
(numpy / native) x overlap schedule the serving layer can run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resil import Resilience, RetryPolicy
from repro.serve import HamiltonianSpec, KPMServer, Request
from repro.sparse.backend.native import native_available

SPEC = HamiltonianSpec("topological_insulator", {"nx": 6, "ny": 6, "nz": 4})
M = 64

BACKENDS = ["numpy"] + (["native"] if native_available() else [])

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler / native backend"
)


def solo_moments(seed: int, *, backend="numpy", engine=None, workers=2,
                 overlap="auto", precision=None, kind="dos", rows=()):
    """One request solved alone on the given engine (width-1 batch)."""
    srv = KPMServer(max_width=1, engine=engine, backend=backend,
                    workers=workers, overlap=overlap)
    if kind == "ldos":
        t = srv.submit(Request(SPEC, kind="ldos", n_moments=M, rows=rows,
                               precision=precision))
    else:
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=seed,
                               precision=precision))
    srv.step()
    return t.result().moments if kind == "dos" else t.result()


def batch_moments(seeds, *, backend="numpy", engine=None, workers=2,
                  overlap="auto", precision=None):
    """The same requests coalesced into one wide batch."""
    srv = KPMServer(max_width=len(seeds), engine=engine, backend=backend,
                    workers=workers, overlap=overlap)
    tickets = [
        srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s,
                           precision=precision))
        for s in seeds
    ]
    assert srv.step() == 1  # all coalesced into one batch
    return [t.result().moments for t in tickets]


# ---------------------------------------------------------------------
# fp64: bitwise across every engine x backend x overlap
# ---------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("width", [2, 4, 8])
def test_serial_fp64_bitwise(backend, width):
    seeds = list(range(width))
    batch = batch_moments(seeds, backend=backend)
    for s, mu in zip(seeds, batch):
        assert np.array_equal(mu, solo_moments(s, backend=backend))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("overlap", ["off", "on"])
def test_sim_fp64_bitwise(backend, overlap):
    seeds = [0, 1, 2]
    batch = batch_moments(seeds, backend=backend, engine="sim",
                          workers=3, overlap=overlap)
    for s, mu in zip(seeds, batch):
        solo = solo_moments(s, backend=backend, engine="sim", workers=3,
                            overlap=overlap)
        assert np.array_equal(mu, solo)


@pytest.mark.parametrize("overlap", ["off", "on"])
def test_mp_fp64_bitwise(overlap):
    seeds = [0, 1, 2, 3]
    batch = batch_moments(seeds, engine="mp", workers=2, overlap=overlap)
    for s, mu in zip(seeds, batch):
        solo = solo_moments(s, engine="mp", workers=2, overlap=overlap)
        assert np.array_equal(mu, solo)


def test_cross_engine_batches_agree_to_tolerance():
    """Different engines reduce in different orders — tolerance, not
    bitwise — but the coalesced answers must agree across engines."""
    serial = batch_moments([0, 1])
    sim = batch_moments([0, 1], engine="sim", workers=2)
    for a, b in zip(serial, sim):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


# ---------------------------------------------------------------------
# narrow profiles: tolerance parity
# ---------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("precision,rtol", [("fp32", 1e-5), ("fp16v", 1e-2)])
def test_serial_narrow_profiles_tolerance(backend, precision, rtol):
    seeds = [0, 1, 2, 3]
    batch = batch_moments(seeds, backend=backend, precision=precision)
    for s, mu in zip(seeds, batch):
        solo = solo_moments(s, backend=backend, precision=precision)
        # identical storage rounding, near-identical accumulation: the
        # widths only differ through fp64-promoted dot ordering
        np.testing.assert_allclose(mu, solo, rtol=1e-10, atol=1e-10)
        # and both sit within profile accuracy of the fp64 answer
        ref = solo_moments(s, backend=backend)
        np.testing.assert_allclose(mu / mu[0], ref / ref[0],
                                   rtol=rtol, atol=rtol)


@pytest.mark.parametrize("precision", ["fp32"])
def test_sim_narrow_profile_tolerance(precision):
    seeds = [0, 1]
    batch = batch_moments(seeds, engine="sim", workers=2,
                          precision=precision)
    for s, mu in zip(seeds, batch):
        solo = solo_moments(s, engine="sim", workers=2, precision=precision)
        np.testing.assert_allclose(mu, solo, rtol=1e-10, atol=1e-10)


# ---------------------------------------------------------------------
# mixed-kind batches and supervised batches keep the same parity
# ---------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_ldos_columns_unperturbed_by_dos_neighbours(backend):
    """An LDOS request coalesced next to DOS columns returns bitwise the
    moments of a solo LDOS solve (fp64)."""
    rows = (0, 7, 19)
    srv = KPMServer(max_width=8, backend=backend)
    tl = srv.submit(Request(SPEC, kind="ldos", n_moments=M, rows=rows))
    td = srv.submit(Request(SPEC, n_moments=M, n_vectors=2, seed=5))
    assert srv.step() == 1
    solo = solo_moments(0, kind="ldos", rows=rows, backend=backend)
    assert np.array_equal(tl.result().rho, solo.rho)
    assert td.result().moments.shape == (M,)


def test_supervised_batch_matches_unsupervised():
    """A batch run under a (fault-free) batch-scoped Supervisor returns
    bitwise what the bare engine returns."""
    seeds = [0, 1, 2]
    bare = batch_moments(seeds)
    srv = KPMServer(
        max_width=8, backend="numpy",
        resilience=Resilience(policy=RetryPolicy(max_attempts=2)),
    )
    tickets = [
        srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s))
        for s in seeds
    ]
    assert srv.step() == 1
    for mu, t in zip(bare, tickets):
        assert np.array_equal(mu, t.result().moments)
