"""The spectra cache: one layer past moments, keyed by damping too.

A moment-cache hit still pays kernel damping plus the dense Chebyshev
evaluation; a *kernel-identical* repeat should skip that as well and
return the cached ``(energies, rho)`` arrays.  A different kernel (or
grid) on the same moments must miss here and fall back to the moment
cache's re-damp path — damping is not part of the moment identity.
"""

import numpy as np
import pytest

from repro.serve import (
    HamiltonianSpec,
    KPMServer,
    Request,
    SpectraCache,
)

SPEC = HamiltonianSpec("topological_insulator", {"nx": 4, "ny": 4, "nz": 4})
M = 32


def spectrum(n: int, lo: float = -1.0, hi: float = 1.0):
    e = np.linspace(lo, hi, n)
    return e, np.exp(-e * e)


class TestUnit:
    def test_put_get_roundtrip(self):
        c = SpectraCache()
        e, rho = spectrum(64)
        k = SpectraCache.key("mk1", "jackson", 64)
        c.put(k, e, rho, meta={"kind": "dos"})
        hit = c.get(k)
        assert hit is not None
        assert np.array_equal(hit.energies, e)
        assert np.array_equal(hit.rho, rho)
        assert hit.meta == {"kind": "dos"}
        assert c.stats() == {"entries": 1, "bytes": hit.nbytes,
                             "hits": 1, "misses": 0, "evictions": 0}

    def test_key_separates_kernel_and_grid(self):
        base = SpectraCache.key("mk1", "jackson", 256)
        assert SpectraCache.key("mk1", "lorentz", 256) != base
        assert SpectraCache.key("mk1", "jackson", 512) != base
        assert SpectraCache.key("mk2", "jackson", 256) != base
        assert SpectraCache.key("mk1", "jackson", 256) == base

    def test_key_fingerprints_explicit_energy_arrays(self):
        grid = np.linspace(-0.5, 0.5, 33)
        k1 = SpectraCache.key("mk", "jackson", grid)
        assert SpectraCache.key("mk", "jackson", grid.copy()) == k1
        assert SpectraCache.key("mk", "jackson", grid * 2) != k1
        assert SpectraCache.key("mk", "jackson", 33) != k1

    def test_lru_eviction_by_entries(self):
        c = SpectraCache(max_entries=2)
        e, rho = spectrum(16)
        for i in range(3):
            c.put(SpectraCache.key(f"mk{i}", "jackson", 16), e, rho)
        assert len(c) == 2
        assert c.get(SpectraCache.key("mk0", "jackson", 16)) is None
        assert c.get(SpectraCache.key("mk2", "jackson", 16)) is not None
        assert c.stats()["evictions"] == 1

    def test_lru_eviction_by_bytes(self):
        e, rho = spectrum(64)
        one = e.nbytes + rho.nbytes
        c = SpectraCache(max_entries=100, max_bytes=2 * one)
        for i in range(3):
            c.put(SpectraCache.key(f"mk{i}", "jackson", 64), e, rho)
        assert len(c) == 2 and c.nbytes <= 2 * one

    def test_get_refreshes_recency(self):
        c = SpectraCache(max_entries=2)
        e, rho = spectrum(16)
        ka = SpectraCache.key("a", "jackson", 16)
        kb = SpectraCache.key("b", "jackson", 16)
        c.put(ka, e, rho)
        c.put(kb, e, rho)
        c.get(ka)  # a is now most recent
        c.put(SpectraCache.key("c", "jackson", 16), e, rho)
        assert c.get(ka) is not None
        assert c.get(kb) is None

    def test_replacement_updates_byte_count(self):
        c = SpectraCache()
        k = SpectraCache.key("mk", "jackson", 16)
        c.put(k, *spectrum(16))
        small = c.nbytes
        c.put(k, *spectrum(64))
        assert len(c) == 1 and c.nbytes > small

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            SpectraCache(max_entries=0)
        with pytest.raises(ValueError):
            SpectraCache(max_bytes=0)


class TestServerIntegration:
    def test_kernel_identical_repeat_hits(self):
        srv = KPMServer(max_width=4, backend="numpy")
        req = Request(SPEC, n_moments=M, n_vectors=1, seed=5)
        t1 = srv.submit(req)
        assert srv.step() == 1
        r1 = t1.result()
        t2 = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=5))
        r2 = t2.result()  # moment-cache hit fulfills without a batch
        assert srv.metrics.counters.get("serve.spectra.hits", 0) == 1
        assert np.array_equal(r1.energies, r2.energies)
        assert np.array_equal(r1.rho, r2.rho)
        assert np.array_equal(r1.moments, r2.moments)

    def test_different_kernel_misses_and_redamps(self):
        srv = KPMServer(max_width=4, backend="numpy")
        t1 = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=5))
        assert srv.step() == 1
        jackson = t1.result()
        t2 = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=5,
                                kernel="lorentz"))
        lorentz = t2.result()
        assert srv.metrics.counters.get("serve.spectra.hits", 0) == 0
        assert srv.metrics.counters.get("serve.spectra.misses", 0) == 2
        # same moments, different damping: the identity that makes the
        # kernel part of the spectra key but not the moment key
        assert np.array_equal(jackson.moments, lorentz.moments)
        assert not np.array_equal(jackson.rho, lorentz.rho)
        assert len(srv.spectra) == 2

    def test_ldos_spectra_cached_separately(self):
        srv = KPMServer(max_width=4, backend="numpy")
        dos = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=5))
        ldos = srv.submit(Request(SPEC, kind="ldos", n_moments=M,
                                  rows=(0, 3)))
        srv.step()
        r_dos, r_ldos = dos.result(), ldos.result()
        assert r_ldos.rho.shape[0] == 2
        assert len(srv.spectra) == 2
        # a repeat LDOS query hits its own entry
        again = srv.submit(Request(SPEC, kind="ldos", n_moments=M,
                                   rows=(0, 3)))
        r2 = again.result()
        assert srv.metrics.counters.get("serve.spectra.hits", 0) == 1
        assert np.array_equal(r_ldos.rho, r2.rho)
        assert np.array_equal(r_dos.rho, dos.result().rho)

    def test_stats_surface(self):
        srv = KPMServer(max_width=2, backend="numpy")
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=1))
        srv.step()
        t.result()
        s = srv.stats()["spectra"]
        assert s["entries"] == 1 and s["misses"] == 1
