"""Deadline semantics: relative seconds, monotonic clock (regression).

The server used to compare ``Request.deadline`` — documented as an
absolute ``time.time()`` value — against the wall clock at fulfillment,
so an NTP step or DST change could spuriously expire every queued
request (or revive a genuinely expired one).  Deadlines are now
*relative* seconds from submission: the ticket stamps an absolute
expiry on the monotonic clock once (``Ticket.deadline_at``), the queue
orders on that stamp, and the server's miss check reads the monotonic
clock — wall-clock steps are invisible end to end.
"""

from __future__ import annotations

import time

import numpy as np

from repro.serve import HamiltonianSpec, KPMServer, Request
from repro.serve.queue import RequestQueue, Ticket

SPEC = HamiltonianSpec("topological_insulator", {"nx": 4, "ny": 4, "nz": 4})
M = 16


def _ticket(req: Request, seq: int = 0) -> Ticket:
    return Ticket(req, f"rk{seq}", f"mk{seq}", f"gk{seq}", seq)


class TestTicketStamp:
    def test_relative_deadline_becomes_monotonic_expiry(self):
        before = time.monotonic()
        t = _ticket(Request(SPEC, n_moments=M, deadline=300.0))
        after = time.monotonic()
        assert before + 300.0 <= t.deadline_at <= after + 300.0

    def test_no_deadline_no_stamp(self):
        assert _ticket(Request(SPEC, n_moments=M)).deadline_at is None

    def test_deadline_not_part_of_any_key(self):
        """Changing the deadline must not change the request's identity
        (the semantics change stays cache-key compatible)."""
        a = Request(SPEC, n_moments=M, deadline=1.0)
        b = Request(SPEC, n_moments=M, deadline=9999.0)
        c = Request(SPEC, n_moments=M)
        assert a.request_key(0) == b.request_key(0) == c.request_key(0)
        assert a.moment_key(0) == b.moment_key(0) == c.moment_key(0)


class TestQueueOrdering:
    def test_tighter_deadline_drains_first(self):
        q = RequestQueue()
        loose = _ticket(Request(SPEC, n_moments=M, deadline=500.0), seq=0)
        tight = _ticket(Request(SPEC, n_moments=M, deadline=5.0), seq=1)
        q.push(loose)
        q.push(tight)
        assert q.drain() == [tight, loose]

    def test_no_deadline_sorts_last(self):
        q = RequestQueue()
        never = _ticket(Request(SPEC, n_moments=M), seq=0)
        soon = _ticket(Request(SPEC, n_moments=M, deadline=60.0), seq=1)
        q.push(never)
        q.push(soon)
        assert q.drain() == [soon, never]

    def test_priority_still_dominates(self):
        q = RequestQueue()
        urgent = _ticket(
            Request(SPEC, n_moments=M, priority=-1), seq=0
        )
        tight = _ticket(
            Request(SPEC, n_moments=M, priority=0, deadline=0.001), seq=1
        )
        q.push(tight)
        q.push(urgent)
        assert q.drain() == [urgent, tight]


class TestServerMissCheck:
    def test_wall_clock_step_does_not_expire_requests(self, monkeypatch):
        """The regression itself: a huge wall-clock jump between submit
        and fulfill must not count a miss for a generous deadline."""
        srv = KPMServer(max_width=4, backend="numpy")
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=1,
                               deadline=300.0))
        monkeypatch.setattr(time, "time", lambda: time.monotonic() + 1e9)
        srv.step()
        assert not t.failed
        assert srv.metrics.counters.get("serve.deadline_missed", 0) == 0

    def test_expired_deadline_is_counted_but_still_fulfilled(self):
        srv = KPMServer(max_width=4, backend="numpy")
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=1,
                               deadline=1e-9, tenant="late"))
        srv.step()
        # a missed deadline is an accounting event, not a failure
        assert np.isfinite(t.result().moments).all()
        assert srv.metrics.counters.get("serve.deadline_missed", 0) == 1
        assert srv.metrics.counters.get(
            "serve.tenant.late.deadline_missed", 0) == 1

    def test_cache_hits_check_their_own_deadline(self):
        """A cache-hit fulfillment goes through the same monotonic
        check: a fresh generous deadline on a cached answer is a hit,
        not a miss."""
        srv = KPMServer(max_width=4, backend="numpy")
        srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=3))
        srv.step()
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=3,
                               kernel="lorentz", deadline=600.0))
        assert t.via == "cache"
        assert srv.metrics.counters.get("serve.deadline_missed", 0) == 0
