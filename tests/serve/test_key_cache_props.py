"""Property tests (hypothesis) for content-addressed keys and the cache.

The server's whole identity layer rests on two opposing properties of
the canonical keys: *invariance* (representation never matters — dict
ordering, tuple vs list, numpy scalars, precision/kernel alias
spellings all collapse) and *sensitivity* (any value change changes
the key).  Both are checked generatively here, alongside the moment
cache's round-trip, partial-upgrade, and bounded-eviction properties.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    HamiltonianSpec,
    MomentCache,
    Request,
    canonical_json,
    canonical_kernel,
    canonical_precision,
)

# -- strategies -------------------------------------------------------

param_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=12),
)

param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=8), param_values, max_size=6
)

ti_specs = st.builds(
    lambda nx, ny, nz, mass: HamiltonianSpec(
        "topological_insulator",
        {"nx": nx, "ny": ny, "nz": nz, "mass": mass},
    ),
    nx=st.integers(2, 12), ny=st.integers(2, 12), nz=st.integers(2, 8),
    mass=st.floats(0.1, 4.0, allow_nan=False),
)

requests = st.builds(
    lambda spec, m, seed, r, kernel, precision: Request(
        spec, n_moments=2 * m, seed=seed, n_vectors=r,
        kernel=kernel, precision=precision,
    ),
    spec=ti_specs, m=st.integers(1, 64), seed=st.integers(0, 2**31),
    r=st.integers(1, 8),
    kernel=st.sampled_from(["jackson", "lorentz", "dirichlet"]),
    precision=st.sampled_from(["fp64", "fp32", "fp16v"]),
)


# -- canonicalization invariance --------------------------------------

@given(params=param_dicts)
def test_dict_ordering_never_matters(params):
    items = list(params.items())
    rev = dict(reversed(items))
    assert canonical_json(params) == canonical_json(rev)


@given(params=param_dicts)
def test_tuple_list_and_numpy_scalars_collapse(params):
    alt = {}
    for k, v in params.items():
        if isinstance(v, bool):
            alt[k] = np.bool_(v)
        elif isinstance(v, int):
            alt[k] = np.int64(v)
        elif isinstance(v, float):
            alt[k] = np.float64(v)
        else:
            alt[k] = v
    wrapped = {"a": tuple(params.values()), "b": params}
    wrapped_alt = {"a": list(alt.values()), "b": alt}
    assert canonical_json(wrapped) == canonical_json(wrapped_alt)


def test_negative_zero_collapses():
    assert canonical_json({"x": -0.0}) == canonical_json({"x": 0.0})


@given(st.sampled_from([
    ("fp64", "double"), ("fp64", "complex128"), ("fp64", "float64"),
    ("fp32", "single"), ("fp32", "complex64"), ("fp16v", "half"),
]))
def test_precision_aliases_share_a_key(pair):
    a, b = pair
    spec = HamiltonianSpec("topological_insulator",
                           {"nx": 4, "ny": 4, "nz": 4})
    ra = Request(spec, n_moments=32, precision=a)
    rb = Request(spec, n_moments=32, precision=b.upper())  # case too
    assert ra.moment_key(0) == rb.moment_key(0)
    assert ra.request_key(0) == rb.request_key(0)


def test_kernel_aliases_share_request_key_only():
    spec = HamiltonianSpec("topological_insulator",
                           {"nx": 4, "ny": 4, "nz": 4})
    r_dir = Request(spec, n_moments=32, kernel="dirichlet")
    r_none = Request(spec, n_moments=32, kernel="none")
    r_jack = Request(spec, n_moments=32, kernel="jackson")
    assert r_dir.request_key(0) == r_none.request_key(0)
    # kernel is NOT part of the moment identity...
    assert r_dir.moment_key(0) == r_jack.moment_key(0)
    # ...but is part of the client-visible answer
    assert r_dir.request_key(0) != r_jack.request_key(0)


def test_alias_validation():
    assert canonical_precision(None) == "fp64"
    assert canonical_kernel(None) == "jackson"
    with pytest.raises(ValueError):
        canonical_precision("fp128")
    with pytest.raises(ValueError):
        canonical_kernel("gibbs")


# -- sensitivity ------------------------------------------------------

@given(req=requests)
@settings(max_examples=40)
def test_any_field_perturbation_changes_the_key(req):
    base_mk = req.moment_key(0)
    base_gk = req.group_key(0)
    perturbed = [
        Request(req.spec, n_moments=req.n_moments + 2, seed=req.seed,
                n_vectors=req.n_vectors, kernel=req.kernel,
                precision=req.precision),
        Request(req.spec, n_moments=req.n_moments, seed=req.seed + 1,
                n_vectors=req.n_vectors, kernel=req.kernel,
                precision=req.precision),
        Request(req.spec, n_moments=req.n_moments, seed=req.seed,
                n_vectors=req.n_vectors + 1, kernel=req.kernel,
                precision=req.precision),
    ]
    spec2 = HamiltonianSpec(
        req.spec.family, {**req.spec.params, "mass": 99.0}
    )
    perturbed.append(Request(spec2, n_moments=req.n_moments, seed=req.seed,
                             n_vectors=req.n_vectors, kernel=req.kernel,
                             precision=req.precision))
    for p in perturbed:
        assert p.moment_key(0) != base_mk
    # spec / M changes break the coalescing group; seed changes don't
    assert perturbed[0].group_key(0) != base_gk
    assert perturbed[1].group_key(0) == base_gk
    assert perturbed[3].group_key(0) != base_gk
    # the spectral map is part of every identity
    assert req.moment_key(1) != base_mk


@given(a=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
       b=st.floats(-100, 100, allow_nan=False, allow_infinity=False))
def test_distinct_param_values_distinct_digests(a, b):
    sa = HamiltonianSpec("topological_insulator",
                         {"nx": 4, "ny": 4, "nz": 4, "mass": a})
    sb = HamiltonianSpec("topological_insulator",
                         {"nx": 4, "ny": 4, "nz": 4, "mass": b})
    if a == b or (a == 0.0 and b == 0.0):
        assert sa.digest == sb.digest
    else:
        assert sa.digest != sb.digest


# -- cache properties -------------------------------------------------

moment_arrays = st.integers(2, 40).map(
    lambda m: np.arange(2 * m, dtype=float)
)


@given(keys=st.lists(st.text(min_size=1, max_size=6), min_size=1,
                     max_size=20, unique=True),
       mu=moment_arrays)
@settings(max_examples=30)
def test_cache_round_trip(keys, mu):
    cache = MomentCache(max_entries=len(keys))
    for k in keys:
        cache.put(k, mu, mu.size)
    for k in keys:
        e = cache.get(k)
        assert e is not None and e.complete
        np.testing.assert_array_equal(e.moments, mu)
    assert cache.stats()["hits"] == len(keys)
    assert cache.stats()["evictions"] == 0


@given(n_keys=st.integers(2, 30), cap=st.integers(1, 8))
def test_eviction_bounds_and_lru_order(n_keys, cap):
    cache = MomentCache(max_entries=cap)
    mu = np.ones(8)
    for i in range(n_keys):
        cache.put(f"k{i}", mu, 8)
    assert len(cache) == min(n_keys, cap)
    assert cache.stats()["evictions"] == max(0, n_keys - cap)
    # the survivors are exactly the most recently inserted ones
    for i in range(n_keys):
        present = f"k{i}" in cache
        assert present == (i >= n_keys - cap)


def test_byte_bound_evicts():
    mu = np.ones(1024)  # 8 KiB
    cache = MomentCache(max_entries=100, max_bytes=3 * mu.nbytes)
    for i in range(10):
        cache.put(f"k{i}", mu, mu.size)
    assert cache.nbytes <= 3 * mu.nbytes
    assert len(cache) == 3


@given(steps=st.lists(st.integers(1, 16), min_size=1, max_size=10))
def test_partial_entries_never_downgrade_and_are_pinned(steps):
    cache = MomentCache(max_entries=1)  # tight: only partials survive
    m_total = 64
    best = 0
    for n in steps:
        cache.put_partial("p", np.ones(n), n, m_total)
        best = max(best, n)
        e = cache.peek_partial("p")
        assert e is not None and e.n_done == best
    # a partial is invisible to get() ...
    assert cache.get("p") is None
    # ... pinned against eviction even when complete entries churn past
    for i in range(5):
        cache.put(f"full{i}", np.ones(4), 4)
    assert cache.peek_partial("p") is not None
    # completion upgrades in place and makes it a normal LRU citizen
    cache.put("p", np.ones(m_total), m_total)
    assert cache.get("p") is not None
    assert cache.get("p").complete
