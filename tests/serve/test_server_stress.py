"""Concurrency stress and fault isolation for the serving layer.

The server's hard guarantees under load: concurrent clients coalesce
(width >= 2 batches actually happen), every client still receives the
bitwise answer of a solo solve, duplicate submissions dedup onto one
solve, shared-memory segments of mp batches are always reclaimed, and
an injected worker crash mid-batch is retried/degraded *inside* that
batch without contaminating any other request's results.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.checkpoint import checkpointed_eta
from repro.core.moments import eta_to_moments
from repro.core.stochastic import make_block_vector
from repro.dist.shm import segment_exists
from repro.resil import FaultPlan, FaultSpec, Resilience, RetryPolicy
from repro.serve import HamiltonianSpec, KPMServer, Request
from repro.util.errors import RetryExhaustedError

SPEC = HamiltonianSpec("topological_insulator", {"nx": 6, "ny": 6, "nz": 4})
OTHER = HamiltonianSpec("topological_insulator", {"nx": 5, "ny": 5, "nz": 4})
M = 64


def solo_mu(srv: KPMServer, spec, seed: int) -> np.ndarray:
    """Bitwise reference: the request's columns solved alone, on the
    same backend the server runs."""
    H, _model, scale = srv.operator(spec)
    V = make_block_vector(H.n_rows, 1, "phase", seed)
    eta = checkpointed_eta(H, scale, M, V, backend=srv.backend)
    return eta_to_moments(eta).mean(axis=0).real


def test_concurrent_clients_coalesce_and_stay_bitwise():
    """12 clients, 3 tenants, mixed priorities/deadlines, one worker
    thread: everything coalesces and every answer is the solo answer."""
    srv = KPMServer(max_width=8, backend="numpy", linger=0.05)
    tickets: dict[int, object] = {}
    lock = threading.Lock()
    start = threading.Barrier(4)

    def client(tenant: int) -> None:
        start.wait()
        for s in range(tenant, 12, 3):
            t = srv.submit(Request(
                SPEC, n_moments=M, n_vectors=1, seed=s,
                tenant=f"tenant{tenant}", priority=tenant % 2,
                deadline=300.0,  # relative seconds (monotonic at submit)
            ))
            with lock:
                tickets[s] = t
    threads = [threading.Thread(target=client, args=(i,)) for i in range(3)]
    with srv:
        for th in threads:
            th.start()
        start.wait()
        for th in threads:
            th.join()
        results = {s: t.result(timeout=300.0) for s, t in tickets.items()}

    widths = [t.via for t in tickets.values() if isinstance(t.via, int)]
    assert widths and max(widths) >= 2, f"no coalescing happened: {widths}"
    assert srv.metrics.counters.get("serve.requests_coalesced", 0) >= 2
    for s, res in results.items():
        assert np.array_equal(res.moments, solo_mu(srv, SPEC, s)), s
    assert srv.metrics.counters.get("serve.deadline_missed", 0) == 0


def test_duplicate_submissions_dedup_to_one_solve():
    srv = KPMServer(max_width=8, backend="numpy", linger=0.05)
    req = Request(SPEC, n_moments=M, n_vectors=1, seed=42)
    with srv:
        tickets = [srv.submit(req) for _ in range(6)]
        mus = [t.result(timeout=300.0).moments for t in tickets]
    assert srv.metrics.counters.get("serve.dedup.hits", 0) >= 1
    for mu in mus[1:]:
        assert np.array_equal(mu, mus[0])
    # one batch of width 1 did all the work
    assert srv.metrics.counters.get("serve.batches") == 1


def test_mp_batches_release_shared_memory():
    srv = KPMServer(max_width=4, engine="mp", workers=2)
    for s in range(4):
        srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s))
    assert srv.step() == 1
    batch, _counters = srv.last_batches[0]
    mw = batch.world
    assert mw is not None and mw.last_segment_names
    assert not any(segment_exists(nm) for nm in mw.last_segment_names)


def mp_solo_mu(spec, seed: int) -> np.ndarray:
    """Bitwise mp reference: a clean width-1 mp batch of the request."""
    ref = KPMServer(max_width=1, engine="mp", workers=2)
    t = ref.submit(Request(spec, n_moments=M, n_vectors=1, seed=seed))
    ref.step()
    return t.result().moments


def test_worker_crash_mid_batch_retries_without_contamination():
    """A planned mp worker crash in one batch: that batch retries under
    its own supervisor and still returns bitwise answers; a different
    group's batch in the same step is untouched."""
    resil = Resilience(
        policy=RetryPolicy(max_attempts=2),
        fault_plan=FaultPlan(specs=(FaultSpec("crash", rank=1, m=8),)),
    )
    srv = KPMServer(max_width=8, engine="mp", workers=2, resilience=resil)
    hit = [srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s))
           for s in range(3)]
    bystander = srv.submit(Request(OTHER, n_moments=M, n_vectors=1, seed=0))
    assert srv.step() == 2  # two groups -> two batches
    assert srv.metrics.counters.get("serve.batch.retries", 0) >= 1
    for s, t in enumerate(hit):
        assert not t.failed
        assert np.array_equal(t.result().moments, mp_solo_mu(SPEC, s))
    assert np.array_equal(bystander.result().moments, mp_solo_mu(OTHER, 0))
    # the crashed attempt's segments are gone too
    for batch, _c in srv.last_batches:
        if batch.world is not None:
            assert not any(
                segment_exists(nm) for nm in batch.world.last_segment_names
            )


def test_exhausted_batch_fails_only_its_own_tickets():
    """Faults on every attempt with degradation disabled: the poisoned
    batch's tickets fail with RetryExhaustedError; a different group's
    batch in the same step still succeeds."""
    plan = FaultPlan(specs=tuple(
        FaultSpec("raise", rank=0, m=4, attempt=a) for a in (1, 2)
    ))
    resil = Resilience(
        policy=RetryPolicy(max_attempts=2), degrade=False, fault_plan=plan,
    )
    srv = KPMServer(max_width=8, backend="numpy", resilience=resil)
    doomed = [srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s))
              for s in range(2)]
    # different M -> different group -> its own batch; M = 8 means the
    # recurrence never reaches iteration 4, so the plan never fires there
    survivor = srv.submit(Request(SPEC, n_moments=8, n_vectors=1, seed=0))
    assert srv.step() == 2
    for t in doomed:
        assert t.failed
        with pytest.raises(RetryExhaustedError):
            t.result()
    # failure never poisons the cache: a later retry must re-solve
    assert srv.cache.get(doomed[0].moment_key) is None
    assert not survivor.failed
    assert survivor.result().moments.shape == (8,)
    # and the server keeps serving: a fault-free server answers the
    # doomed request bitwise-correctly, nothing leaked across
    clean = KPMServer(max_width=8, backend="numpy")
    t_ok = clean.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=0))
    clean.step()
    assert np.array_equal(t_ok.result().moments, solo_mu(clean, SPEC, 0))


def test_streaming_partials_under_concurrency():
    """Streaming clients observe strictly growing, prefix-consistent
    partial moment sets that converge to the final answer."""
    srv = KPMServer(max_width=8, backend="numpy", stream_every=8,
                    linger=0.05)
    with srv:
        tickets = [
            srv.submit(Request(SPEC, n_moments=M, n_vectors=1, seed=s))
            for s in range(4)
        ]
        results = [t.result(timeout=300.0) for t in tickets]
    for t, res in zip(tickets, results):
        assert t.partials, "no partials streamed"
        last = 0
        for n_done, mu_p in t.partials:
            assert n_done > last
            last = n_done
            assert np.array_equal(mu_p, res.moments[:n_done])
