"""Random-vector ensembles and generator spawning."""

import numpy as np
import pytest

from repro.util.rng import (
    gaussian_vector,
    make_rng,
    rademacher_vector,
    random_phase_vector,
    spawn_rngs,
)


class TestMakeRng:
    def test_accepts_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_reproducible(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g


class TestSpawn:
    def test_stable_across_n(self):
        a = spawn_rngs(42, 3)
        b = spawn_rngs(42, 5)
        for x, y in zip(a, b):
            assert x.integers(1 << 30) == y.integers(1 << 30)

    def test_children_differ(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestEnsembles:
    def test_phase_unit_modulus(self):
        v = random_phase_vector(make_rng(0), 1000)
        assert np.allclose(np.abs(v), 1.0)

    def test_phase_mean_near_zero(self):
        v = random_phase_vector(make_rng(0), 20000)
        assert abs(v.mean()) < 0.05

    def test_rademacher_values(self):
        v = rademacher_vector(make_rng(0), 1000)
        assert set(np.unique(v.real)) <= {-1.0, 1.0}
        assert np.all(v.imag == 0)

    def test_gaussian_component_variance(self):
        v = gaussian_vector(make_rng(0), 50000)
        # complex with E|v|^2 = 1
        assert abs(np.mean(np.abs(v) ** 2) - 1.0) < 0.05

    def test_gaussian_real_dtype(self):
        v = gaussian_vector(make_rng(0), 100, dtype=np.float64)
        assert v.dtype == np.float64

    @pytest.mark.parametrize(
        "draw", [random_phase_vector, rademacher_vector, gaussian_vector]
    )
    def test_identity_second_moment(self, draw):
        """E[v v^H] = Identity is what makes the trace estimator unbiased."""
        rng = make_rng(3)
        n, samples = 6, 4000
        acc = np.zeros((n, n), dtype=complex)
        for _ in range(samples):
            v = draw(rng, n)
            acc += np.outer(v, np.conj(v))
        acc /= samples
        assert np.allclose(acc, np.eye(n), atol=0.1)
