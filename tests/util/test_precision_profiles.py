"""Precision profiles: widths, index compression, storage round-trips.

The uint16/uint32 boundary is tested exhaustively at 65,535 / 65,536 /
65,537 columns (uint16 addresses indices 0..65535, i.e. up to exactly
2^16 columns) and property-based over random index sets via hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.compress import (
    compress_indices,
    decompress_indices,
    narrow_index_dtype,
)
from repro.util.constants import IDTYPE
from repro.util.precision import (
    FP16V,
    FP32,
    FP64,
    PRECISION_CHOICES,
    PRECISIONS,
    UINT16_MAX_COLS,
    get_precision,
    precision_of,
)

SETTINGS = dict(max_examples=60, deadline=None, derandomize=True)


class TestProfiles:
    def test_registry(self):
        assert PRECISION_CHOICES == ("fp64", "fp32", "fp16v")
        assert PRECISIONS["fp64"] is FP64

    def test_widths(self):
        # the paper's S_d = 16 baseline, then the halved/quartered tiers
        assert (FP64.s_value, FP64.s_vector) == (16, 16)
        assert (FP32.s_value, FP32.s_vector) == (8, 8)
        assert (FP16V.s_value, FP16V.s_vector) == (8, 4)

    def test_compute_dtype(self):
        assert FP64.compute_dtype == np.complex128
        assert FP32.compute_dtype == np.complex64
        assert FP16V.compute_dtype == np.complex64
        assert FP16V.half_vectors and not FP32.half_vectors

    def test_get_precision(self):
        assert get_precision(None) is FP64
        assert get_precision("FP32") is FP32
        assert get_precision(FP16V) is FP16V
        with pytest.raises(ValueError, match="unknown precision"):
            get_precision("fp8")

    def test_precision_of(self):
        assert precision_of(np.zeros(3, np.complex128)) is FP64
        assert precision_of(np.zeros(3, np.complex64)) is FP32
        assert precision_of(np.zeros((3, 2), np.float16)) is FP16V
        with pytest.raises(TypeError):
            precision_of(np.zeros(3, np.float64))

    def test_vec_shape_and_logical_shape(self):
        assert FP32.vec_shape(5, 3) == (5, 3)
        assert FP16V.vec_shape(5, 3) == (5, 3, 2)
        arr = FP16V.vec_zeros(5, 3)
        assert arr.shape == (5, 3, 2) and arr.dtype == np.float16
        assert FP16V.logical_shape(arr) == (5, 3)


class TestIndexBoundary:
    """uint16 eligibility flips between 65,536 and 65,537 columns."""

    @pytest.mark.parametrize("n_cols,expect", [
        (1, np.uint16),
        (UINT16_MAX_COLS - 1, np.uint16),   # 65,535
        (UINT16_MAX_COLS, np.uint16),        # 65,536: max index 65,535
        (UINT16_MAX_COLS + 1, IDTYPE),       # 65,537: index 65,536 overflows
    ])
    def test_narrow_index_dtype(self, n_cols, expect):
        assert narrow_index_dtype(n_cols) == np.dtype(expect)

    @pytest.mark.parametrize("n_cols,s_i", [
        (UINT16_MAX_COLS, 2), (UINT16_MAX_COLS + 1, 4),
    ])
    def test_profile_index_bytes(self, n_cols, s_i):
        for prec in (FP32, FP16V):
            assert prec.index_bytes(n_cols) == s_i
            assert prec.index_dtype(n_cols) == narrow_index_dtype(n_cols)
        # fp64 never compresses: the published Table-I S_i = 4 stands
        assert FP64.index_bytes(n_cols) == 4
        assert FP64.index_dtype(n_cols) == np.int32

    def test_boundary_values_survive(self):
        # the two largest uint16-representable indices, at the edge
        idx = np.array([0, 65534, 65535], dtype=IDTYPE)
        comp = compress_indices(idx, UINT16_MAX_COLS)
        assert comp.dtype == np.uint16
        assert np.array_equal(decompress_indices(comp), idx)
        # one column more and compression must decline, not wrap
        wide = compress_indices(np.array([65536], IDTYPE),
                                UINT16_MAX_COLS + 1)
        assert wide.dtype == np.dtype(IDTYPE)

    def test_out_of_range_refused(self):
        with pytest.raises(ValueError, match="out of range"):
            compress_indices(np.array([70000], IDTYPE), UINT16_MAX_COLS)
        with pytest.raises(ValueError, match="out of range"):
            compress_indices(np.array([-1], IDTYPE), UINT16_MAX_COLS)


@given(
    n_cols=st.one_of(
        st.integers(1, 300),
        st.sampled_from([UINT16_MAX_COLS - 1, UINT16_MAX_COLS,
                         UINT16_MAX_COLS + 1, 10 * UINT16_MAX_COLS]),
    ),
    data=st.data(),
)
@settings(**SETTINGS)
def test_index_round_trip_props(n_cols, data):
    """compress -> decompress is the identity for any in-range index set."""
    idx = np.asarray(
        data.draw(st.lists(st.integers(0, n_cols - 1), max_size=64)),
        dtype=IDTYPE,
    )
    comp = compress_indices(idx, n_cols)
    assert comp.dtype == narrow_index_dtype(n_cols)
    back = decompress_indices(comp)
    assert back.dtype == np.dtype(IDTYPE)
    assert np.array_equal(back, idx)
    # compressing an already-narrow array is a no-copy identity
    again = compress_indices(comp, n_cols)
    assert again is comp


@given(
    shape=st.tuples(st.integers(1, 12), st.integers(1, 4)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(**SETTINGS)
def test_encode_decode_round_trip_props(shape, seed):
    """Storage encode/decode round-trips for every profile.

    fp64/fp32 are exact in their own dtype; fp16v is exact for values
    already representable in float16 (here: small integers halved).
    """
    rng = np.random.default_rng(seed)
    base = (rng.integers(-8, 8, shape) + 1j * rng.integers(-8, 8, shape))
    for prec in (FP64, FP32, FP16V):
        src = np.asarray(base, dtype=prec.compute_dtype) / 2
        stored = prec.encode(src)
        assert stored.shape == prec.vec_shape(*shape)
        out = np.empty(shape, dtype=prec.compute_dtype)
        assert np.array_equal(prec.decode(stored, out=out), src)
        assert np.array_equal(prec.decode(stored), src)
