"""Timer, validation helpers, and constants."""

import numpy as np
import pytest

from repro.util.constants import (
    DTYPE,
    F_ADD,
    F_MUL,
    S_D,
    S_I,
    element_size,
    flops_per_cadd,
    flops_per_cmul,
)
from repro.util.errors import ShapeError
from repro.util.timing import Timer, gflops
from repro.util.validation import (
    check_block_vector,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_vector,
)


class TestConstants:
    def test_paper_parameter_values(self):
        # Section III-A: S_d = 16, S_i = 4, F_a = 2, F_m = 6
        assert (S_D, S_I, F_ADD, F_MUL) == (16, 4, 2, 6)

    def test_element_size_matches_dtype(self):
        assert element_size(DTYPE) == 16
        assert element_size(np.float64) == 8

    def test_flop_costs_for_real_dtypes(self):
        assert flops_per_cmul(np.float64) == 1
        assert flops_per_cadd(np.float64) == 1
        assert flops_per_cmul(np.complex128) == 6
        assert flops_per_cadd(np.complex128) == 2


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert len(t.laps) == 3
        assert t.elapsed >= 0
        assert t.best <= t.mean or np.isclose(t.best, t.mean)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0 and t.laps == []

    def test_empty_stats(self):
        t = Timer()
        assert t.mean == 0.0
        assert t.best == float("inf")

    def test_gflops(self):
        assert gflops(2e9, 1.0) == 2.0
        assert gflops(1.0, 0.0) == 0.0


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 0, 1)

    def test_check_vector_shape(self):
        v = np.zeros(5)
        assert check_vector("v", v, 5) is not None
        with pytest.raises(ShapeError):
            check_vector("v", v, 6)
        with pytest.raises(ShapeError):
            check_vector("v", np.zeros((5, 1)), 5)

    def test_check_block_vector_contiguity(self):
        ok = np.zeros((4, 3))
        check_block_vector("V", ok, 4)
        check_block_vector("V", ok, 4, 3)
        with pytest.raises(ShapeError, match="C-contiguous"):
            check_block_vector("V", np.asfortranarray(np.zeros((4, 3))), 4)
        with pytest.raises(ShapeError):
            check_block_vector("V", ok, 4, 2)
        with pytest.raises(ShapeError):
            check_block_vector("V", np.zeros(4), 4)
