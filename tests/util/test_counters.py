"""PerfCounters accounting semantics."""

import math

import pytest

from repro.util.counters import NULL_COUNTERS, PerfCounters


class TestCharge:
    def test_accumulates_bytes_and_flops(self):
        c = PerfCounters()
        c.charge("spmv", loads=100, stores=20, flops=50)
        c.charge("spmv", loads=10, flops=5)
        assert c.bytes_loaded == 110
        assert c.bytes_stored == 20
        assert c.flops == 55
        assert c.bytes_total == 130

    def test_call_tally_per_kernel(self):
        c = PerfCounters()
        c.charge("axpy")
        c.charge("axpy")
        c.charge("dot")
        assert c.calls == {"axpy": 2, "dot": 1}

    def test_code_balance(self):
        c = PerfCounters()
        c.charge("k", loads=138, stores=0, flops=69)
        assert c.code_balance == 2.0

    def test_code_balance_without_flops_is_inf(self):
        assert math.isinf(PerfCounters().code_balance)

    def test_disabled_counters_ignore_charges(self):
        c = PerfCounters(enabled=False)
        c.charge("k", loads=100, flops=10)
        assert c.bytes_total == 0
        assert c.flops == 0


class TestNullCounters:
    def test_null_charge_is_noop(self):
        NULL_COUNTERS.charge("anything", loads=1 << 40, flops=1 << 40)
        assert NULL_COUNTERS.bytes_total == 0
        assert NULL_COUNTERS.flops == 0
        assert NULL_COUNTERS.calls == {}

    def test_merge_cannot_corrupt_singleton(self):
        # regression: merging a live counter into the shared sentinel used
        # to accumulate into it, poisoning every later uncounted call site
        donor = PerfCounters()
        donor.charge("x", loads=1 << 30, stores=1 << 30, flops=1 << 30)
        NULL_COUNTERS.merge(donor)
        assert NULL_COUNTERS.bytes_total == 0
        assert NULL_COUNTERS.flops == 0
        assert NULL_COUNTERS.calls == {}

    def test_reset_is_noop(self):
        NULL_COUNTERS.reset()
        assert NULL_COUNTERS.bytes_total == 0

    def test_attribute_mutation_raises(self):
        with pytest.raises(AttributeError):
            NULL_COUNTERS.bytes_loaded = 1
        with pytest.raises(AttributeError):
            NULL_COUNTERS.enabled = True

    def test_calls_mapping_is_read_only(self):
        with pytest.raises(TypeError):
            NULL_COUNTERS.calls["x"] = 1


class TestResetMerge:
    def test_reset_zeroes_everything(self):
        c = PerfCounters()
        c.charge("k", loads=5, stores=5, flops=5)
        c.reset()
        assert c.bytes_total == 0 and c.flops == 0 and c.calls == {}

    def test_merge_adds_all_fields(self):
        a = PerfCounters()
        b = PerfCounters()
        a.charge("x", loads=1, stores=2, flops=3)
        b.charge("x", loads=10, stores=20, flops=30)
        b.charge("y", flops=1)
        a.merge(b)
        assert a.bytes_loaded == 11
        assert a.bytes_stored == 22
        assert a.flops == 34
        assert a.calls == {"x": 2, "y": 1}

    def test_summary_mentions_balance(self):
        c = PerfCounters()
        c.charge("k", loads=4, flops=2)
        assert "balance" in c.summary()
