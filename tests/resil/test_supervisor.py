"""The supervisor: classification, retries, degradation, checkpoint drills."""

import numpy as np
import pytest

from repro.core.moments import compute_eta
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.obs import MetricsRegistry
from repro.resil import (
    ENGINE_LADDERS,
    FaultPlan,
    Resilience,
    RetryPolicy,
    Supervisor,
    classify_error,
)
from repro.util.errors import (
    BackendError,
    CheckpointError,
    FaultInjected,
    FormatError,
    RetryExhaustedError,
    WorkerFailure,
    WorkerFault,
)


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(4, 4, 2)
    scale = lanczos_scale(h, seed=0)
    blk = make_block_vector(h.n_rows, 2, seed=1)
    ref = compute_eta(h, scale, 16, blk, "aug_spmmv", backend="numpy")
    return h, scale, blk, ref


def make_supervisor(**kw):
    kw.setdefault("policy", RetryPolicy(max_attempts=2))
    return Supervisor(**kw)


class TestClassify:
    def test_checkpoint(self):
        assert classify_error(CheckpointError("bad")) == "checkpoint"

    def test_backend(self):
        assert classify_error(BackendError("no compiler")) == "backend"

    def test_worker_death(self):
        exc = WorkerFailure("died", [WorkerFault(1, "death", exit_code=3)])
        assert classify_error(exc) == "worker_death"

    def test_stall_wins_over_death(self):
        # a stalled rank usually drags peers down with it; classify by cause
        exc = WorkerFailure("wedged", [
            WorkerFault(0, "stall"), WorkerFault(1, "death", exit_code=-15),
        ])
        assert classify_error(exc) == "stall"

    def test_run_timeout_is_a_stall(self):
        exc = WorkerFailure("deadline", [WorkerFault(0, "timeout")])
        assert classify_error(exc) == "stall"

    def test_worker_exception(self):
        exc = WorkerFailure("raised", [WorkerFault(0, "exception", "boom")])
        assert classify_error(exc) == "worker_exception"

    def test_fault_injected(self):
        assert classify_error(FaultInjected("x")) == "worker_exception"
        assert classify_error(FaultInjected("x", kind="stall")) == "stall"

    def test_repro_error_is_engine(self):
        assert classify_error(FormatError("bad matrix")) == "engine"

    def test_anything_else_is_unknown(self):
        assert classify_error(RuntimeError("?")) == "unknown"


class TestLadders:
    def test_shapes(self):
        assert ENGINE_LADDERS["mp"] == ("mp", "sim", "serial")
        assert ENGINE_LADDERS["sim"] == ("sim", "serial")
        assert ENGINE_LADDERS["serial"] == ("serial",)

    def test_unknown_engine_rejected(self, system):
        h, scale, blk, _ = system
        with pytest.raises(ValueError, match="engine"):
            make_supervisor().run_eta(h, scale, 16, blk, engine="mpi")


class TestSerialRecovery:
    def test_clean_run_matches_engine(self, system):
        h, scale, blk, ref = system
        sup = make_supervisor()
        eta = sup.run_eta(h, scale, 16, blk, engine="serial",
                          backend="numpy")
        assert np.array_equal(eta, ref)
        assert sup.report.faults == 0
        assert "clean first attempt" in sup.report.summary()

    def test_injected_fault_retries_to_success(self, system):
        h, scale, blk, ref = system
        metrics = MetricsRegistry()
        sup = make_supervisor(
            fault_plan="raise:rank=0,m=4", metrics=metrics,
        )
        eta = sup.run_eta(h, scale, 16, blk, engine="serial",
                          backend="numpy")
        assert np.array_equal(eta, ref)  # recovery never changes numerics
        assert sup.report.faults == 1
        assert sup.report.retries == 1
        assert sup.report.attempts[0].error_class == "worker_exception"
        assert metrics.counters["resil.faults"] == 1
        assert metrics.counters["resil.faults.worker_exception"] == 1
        assert metrics.counters["resil.retries"] == 1

    def test_checkpoint_resume_is_bitwise(self, system, tmp_path):
        h, scale, blk, ref = system
        metrics = MetricsRegistry()
        sup = make_supervisor(
            fault_plan="raise:rank=0,m=6",
            checkpoint_every=2, checkpoint_path=tmp_path / "ck.npz",
            metrics=metrics,
        )
        eta = sup.run_eta(h, scale, 16, blk, engine="serial",
                          backend="numpy")
        assert np.array_equal(eta, ref)
        assert sup.report.resumes == 1
        assert sup.report.resume_m is not None and sup.report.resume_m > 1
        assert metrics.gauges["resil.resume_m"] == sup.report.resume_m
        assert "resumed from checkpoint" in sup.report.summary()

    def test_auto_tempdir_checkpoint_is_cleaned(self, system):
        import glob

        h, scale, blk, ref = system
        sup = make_supervisor(fault_plan="raise:rank=0,m=6",
                              checkpoint_every=2)
        eta = sup.run_eta(h, scale, 16, blk, engine="serial",
                          backend="numpy")
        assert np.array_equal(eta, ref)
        assert sup.report.resumes == 1
        import tempfile
        assert not glob.glob(tempfile.gettempdir() + "/repro-resil-*")

    def test_exhaustion_raises_with_history(self, system):
        h, scale, blk, _ = system
        # the fault fires on every attempt: unrecoverable by retrying
        plan = FaultPlan.parse("raise:m=4,attempt=1;raise:m=4,attempt=2")
        sup = make_supervisor(fault_plan=plan, degrade=False)
        with pytest.raises(RetryExhaustedError) as ei:
            sup.run_eta(h, scale, 16, blk, engine="serial", backend="numpy")
        hist = ei.value.history
        assert len(hist) == 2
        assert [h_[1] for h_ in hist] == [1, 2]
        assert all(h_[0] == "serial" for h_ in hist)


class TestDegradation:
    def test_sim_degrades_to_serial(self, system):
        h, scale, blk, ref = system
        metrics = MetricsRegistry()
        # one attempt per rung; the fault fires on both attempts, but the
        # serial engine runs as rank 0 only and the fault targets rank 1
        plan = FaultPlan.parse("raise:rank=1,m=3,attempt=1;"
                               "raise:rank=1,m=3,attempt=2")
        sup = Supervisor(RetryPolicy(max_attempts=1), fault_plan=plan,
                         metrics=metrics)
        eta = sup.run_eta(h, scale, 16, blk, engine="sim", workers=2,
                          backend="numpy")
        assert np.allclose(eta, ref, atol=1e-9)
        assert sup.report.engine_degradations == 1
        assert sup.report.final_engine == "serial"
        assert metrics.counters["resil.engine_degraded"] == 1
        assert "degraded engine 1x" in sup.report.summary()

    def test_no_degrade_stays_on_requested_engine(self, system):
        h, scale, blk, _ = system
        plan = FaultPlan.parse("raise:rank=1,m=3,attempt=1;"
                               "raise:rank=1,m=3,attempt=2")
        sup = Supervisor(RetryPolicy(max_attempts=2), fault_plan=plan,
                         degrade=False)
        with pytest.raises(RetryExhaustedError, match="sim"):
            sup.run_eta(h, scale, 16, blk, engine="sim", workers=2,
                        backend="numpy")


class TestCheckpointDrill:
    def test_corrupt_ckpt_discards_and_restarts(self, system, tmp_path):
        h, scale, blk, ref = system
        metrics = MetricsRegistry()
        # attempt 1 saves checkpoints then faults; before attempt 2 the
        # drill corrupts the file, so recovery must fall back to m=0
        sup = make_supervisor(
            fault_plan="raise:rank=0,m=6;corrupt-ckpt:attempt=2",
            checkpoint_every=2, checkpoint_path=tmp_path / "ck.npz",
            metrics=metrics,
        )
        eta = sup.run_eta(h, scale, 16, blk, engine="serial",
                          backend="numpy")
        assert np.array_equal(eta, ref)
        assert sup.report.checkpoint_discards == 1
        assert sup.report.resumes == 0  # the corrupted state was never used
        assert metrics.counters["resil.checkpoint_discarded"] == 1

    def test_sim_engine_checkpoint_resume_bitwise(self, system, tmp_path):
        from repro.dist.comm import SimWorld
        from repro.dist.kpm_parallel import distributed_eta
        from repro.dist.partition import RowPartition

        h, scale, blk, _ = system
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, 16, blk, SimWorld(2),
                              backend="numpy")
        sup = make_supervisor(
            fault_plan="raise:rank=1,m=5",
            checkpoint_every=2, checkpoint_path=tmp_path / "ck.npz",
        )
        eta = sup.run_eta(h, scale, 16, blk, engine="sim", workers=2,
                          backend="numpy")
        assert np.array_equal(eta, ref)
        assert sup.report.resumes == 1


class TestConfig:
    def test_from_config_roundtrip(self):
        cfg = Resilience(policy=RetryPolicy(max_attempts=4),
                         checkpoint_every=3, degrade=False,
                         fault_plan="crash:m=2")
        sup = Supervisor.from_config(cfg, seed=11)
        assert sup.policy.max_attempts == 4
        assert sup.checkpoint_every == 3
        assert sup.degrade is False
        assert sup.fault_plan.specs[0].kind == "crash"
        assert sup.seed == 11

    def test_backoff_sleeps_are_injected(self, system):
        h, scale, blk, _ = system
        slept = []
        sup = Supervisor(
            RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0),
            fault_plan="raise:rank=0,m=4", sleep=slept.append,
        )
        sup.run_eta(h, scale, 16, blk, engine="serial", backend="numpy")
        assert slept == [0.5]
