"""FaultPlan parsing, the per-rank injector, and corruption drills."""

import numpy as np
import pytest

from repro.resil import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    as_fault_plan,
)
from repro.util.errors import FaultInjected


class TestSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode")

    @pytest.mark.parametrize("kw", [
        {"rank": -1}, {"m": -2}, {"attempt": 0}, {"delay": -1.0},
    ])
    def test_invalid_fields_rejected(self, kw):
        with pytest.raises(ValueError):
            FaultSpec("crash", **kw)

    def test_attempt_defaults_to_first(self):
        # faults fire on attempt 1 only, so retries can succeed
        assert FaultSpec("crash").attempt == 1


class TestParse:
    def test_single_entry(self):
        plan = FaultPlan.parse("crash:rank=1,m=8")
        assert plan.specs == (FaultSpec("crash", rank=1, m=8),)

    def test_multi_entry(self):
        plan = FaultPlan.parse("stall:rank=0,m=4;corrupt-ckpt:attempt=2")
        assert len(plan.specs) == 2
        assert plan.specs[1] == FaultSpec("corrupt-ckpt", attempt=2)

    def test_bare_kind(self):
        plan = FaultPlan.parse("raise")
        assert plan.specs == (FaultSpec("raise"),)

    @pytest.mark.parametrize("text", [
        "crash:rank",            # missing =value
        "crash:speed=3",         # unknown parameter
        "meteor:rank=0",         # unknown kind
        "crash:rank=one",        # non-integer
    ])
    def test_malformed_input_fails_loudly(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_roundtrip(self):
        text = "crash:rank=1,m=8;slow:rank=2,m=3,delay=0.5;corrupt-ckpt:attempt=2"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(str(plan)) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("crash")

    def test_checkpoint_faults_filtered_by_attempt(self):
        plan = FaultPlan.parse("corrupt-ckpt:attempt=2;crash:m=3")
        assert plan.checkpoint_faults(1) == ()
        assert len(plan.checkpoint_faults(2)) == 1

    def test_as_fault_plan_coercions(self):
        assert as_fault_plan(None) is None
        plan = FaultPlan.parse("crash")
        assert as_fault_plan(plan) is plan
        assert as_fault_plan("crash:m=2", seed=5).seed == 5
        with pytest.raises(TypeError):
            as_fault_plan(42)

    def test_all_kinds_parse(self):
        for kind in FAULT_KINDS:
            assert FaultPlan.parse(kind).specs[0].kind == kind


class TestInjector:
    def test_filters_by_rank(self):
        plan = FaultPlan.parse("raise:rank=1,m=3")
        assert not FaultInjector(plan, rank=0, attempt=1)
        inj = FaultInjector(plan, rank=1, attempt=1)
        assert inj
        inj.at_iteration(2)  # wrong iteration: no-op
        with pytest.raises(FaultInjected, match="rank 1 at m=3"):
            inj.at_iteration(3)

    def test_filters_by_attempt(self):
        plan = FaultPlan.parse("raise:m=3")
        assert FaultInjector(plan, rank=0, attempt=1)
        # the fault does not chase the job across retries
        inj = FaultInjector(plan, rank=0, attempt=2)
        assert not inj
        inj.at_iteration(3)

    def test_none_plan_is_inert(self):
        inj = FaultInjector(None, rank=0, attempt=1)
        assert not inj
        inj.at_iteration(0)

    def test_in_process_crash_raises_instead_of_exiting(self):
        inj = FaultInjector(FaultPlan.parse("crash:m=1"), rank=0,
                            attempt=1, in_process=True)
        with pytest.raises(FaultInjected):
            inj.at_iteration(1)

    def test_in_process_stall_raises_with_kind(self):
        inj = FaultInjector(FaultPlan.parse("stall:m=1,delay=0.01"),
                            rank=0, attempt=1, in_process=True)
        with pytest.raises(FaultInjected) as ei:
            inj.at_iteration(1)
        assert ei.value.kind == "stall"

    def test_slow_returns_after_sleeping(self):
        inj = FaultInjector(FaultPlan.parse("slow:m=1,delay=0.01"),
                            rank=0, attempt=1, in_process=True)
        inj.at_iteration(1)  # must not raise

    def test_corrupt_window_is_seeded_and_targeted(self):
        plan = FaultPlan.parse("corrupt-halo:rank=0,m=2", seed=9)
        inj = FaultInjector(plan, rank=0, attempt=1)
        win1 = np.ones(8, dtype=np.complex128)
        win2 = np.ones(8, dtype=np.complex128)
        assert inj.corrupt_window(2, win1)
        assert not np.array_equal(win1, np.ones(8))
        # deterministic: a second injector scribbles identical noise
        inj2 = FaultInjector(plan, rank=0, attempt=1)
        assert inj2.corrupt_window(2, win2)
        assert np.array_equal(win1, win2)
        # untouched at other iterations
        win3 = np.ones(8, dtype=np.complex128)
        assert not inj.corrupt_window(3, win3)
        assert np.array_equal(win3, np.ones(8))
