"""Elastic membership under supervision and through the public knobs.

A worker death under an active :class:`RebalancePolicy` is absorbed
*inside* the mp attempt — survivors take over the dead rank's rows at
the next iteration boundary, the engine ladder never engages, and the
fp64 moments stay bitwise identical to an uninterrupted run.  The same
``rebalance=`` / ``membership=`` knobs ride through ``Resilience``,
:class:`KPMSolver`, and :class:`KPMServer` unchanged.
"""

import numpy as np
import pytest

from repro.core.moments import eta_to_moments
from repro.core.scaling import lanczos_scale
from repro.core.solver import KPMSolver
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.elastic import RebalancePolicy
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.partition import RowPartition
from repro.dist.shm import segment_exists
from repro.resil import FaultPlan, FaultSpec, Resilience, RetryPolicy, Supervisor
from repro.serve import HamiltonianSpec, KPMServer, Request

M = 24
G = 32
SPEC = HamiltonianSpec("topological_insulator", {"nx": 6, "ny": 6, "nz": 4})


@pytest.fixture(scope="module")
def system():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(6, 6, 4)  # 576 rows = 18 grid blocks
    scale = lanczos_scale(h, seed=1)
    blk = make_block_vector(h.n_rows, 2, seed=2)
    part1 = RowPartition.equal(h.n_rows, 1, align=G)
    ref = distributed_eta(h, part1, scale, M, blk, SimWorld(1), eta_grid=G)
    return h, scale, blk, ref


POL = RebalancePolicy(grid=G, interval=5)


class TestSupervisedMembership:
    def test_worker_death_absorbed_without_degradation(self, system):
        h, scale, blk, ref = system
        sup = Supervisor(
            RetryPolicy(max_attempts=2), rebalance=POL,
            fault_plan=FaultPlan(specs=(FaultSpec("crash", rank=1, m=4),)),
        )
        eta = sup.run_eta(h, scale, M, blk, engine="mp", workers=3)
        assert np.array_equal(eta, ref)
        # elasticity absorbed the death inside the attempt: the ladder
        # never engaged and no supervisor-level retry was spent
        assert sup.report.final_engine == "mp"
        assert sup.report.retries == 0 and not sup.report.attempts
        assert sup.report.membership_leaves == 1
        rep = sup.last_elastic_report
        assert rep.final_n_workers == 2
        assert rep.leaves == 1
        assert not any(segment_exists(nm) for nm in rep.segment_names)

    def test_planned_join_grows_world(self, system):
        h, scale, blk, ref = system
        sup = Supervisor(RetryPolicy(max_attempts=1), rebalance=POL,
                         membership="join:m=6,ranks=1")
        eta = sup.run_eta(h, scale, M, blk, engine="mp", workers=2)
        assert np.array_equal(eta, ref)
        assert sup.report.membership_joins == 1
        assert sup.last_elastic_report.final_n_workers == 3

    @pytest.mark.parametrize("engine,workers", [("sim", 3), ("serial", 1)])
    def test_lower_rungs_replay_same_reduction(self, system, engine,
                                               workers):
        """A degradation mid-ladder lands on sim/serial rungs that run
        the identical grid-eta reduction — still bitwise."""
        h, scale, blk, ref = system
        sup = Supervisor(RetryPolicy(max_attempts=1), rebalance=POL)
        eta = sup.run_eta(h, scale, M, blk, engine=engine, workers=workers)
        assert np.array_equal(eta, ref)

    def test_resilience_config_carries_elastic_knobs(self):
        cfg = Resilience(policy=RetryPolicy(max_attempts=2),
                         rebalance="auto", membership="leave:m=8,rank=1")
        sup = Supervisor.from_config(cfg)
        assert sup.rebalance == RebalancePolicy()
        assert sup.membership == "leave:m=8,rank=1"


class TestSolverKnob:
    def test_mp_elastic_matches_sim_grid(self, system):
        h, scale, _blk, _ref = system
        kw = dict(n_moments=M, n_vectors=2, scale=scale, seed=3,
                  rebalance="auto", backend="numpy")
        mu_mp = KPMSolver(h, dist_engine="mp", workers=3, **kw).moments()
        mu_sim = KPMSolver(h, dist_engine="sim", workers=2, **kw).moments()
        assert np.array_equal(mu_mp, mu_sim)

    def test_elastic_report_exposed(self, system):
        h, scale, _blk, _ref = system
        solver = KPMSolver(h, n_moments=M, n_vectors=2, scale=scale,
                           seed=3, dist_engine="mp", workers=2,
                           rebalance=POL, membership="join:m=6,ranks=1")
        solver.moments()
        rep = solver.elastic_report
        assert rep is not None
        assert rep.joins == 1 and rep.final_n_workers == 3

    def test_rebalance_requires_distributed_engine(self, system):
        h, *_ = system
        with pytest.raises(ValueError, match="rebalance"):
            KPMSolver(h, n_moments=M, rebalance="auto")


class TestServerKnob:
    def test_elastic_mp_batch_matches_sim(self):
        req = Request(SPEC, n_moments=M, n_vectors=2, seed=7)
        mus = []
        for engine, workers in (("mp", 3), ("sim", 2)):
            srv = KPMServer(max_width=4, engine=engine, workers=workers,
                            rebalance="auto")
            t = srv.submit(req)
            assert srv.step() == 1
            mus.append(t.result().moments)
        assert np.array_equal(mus[0], mus[1])

    def test_crash_batch_shrinks_server_world(self):
        """A worker death during an elastic batch leaves the learned
        membership behind: the next batch starts on the survivors."""
        resil = Resilience(
            policy=RetryPolicy(max_attempts=2),
            fault_plan=FaultPlan(specs=(FaultSpec("crash", rank=1, m=4),)),
        )
        srv = KPMServer(max_width=4, engine="mp", workers=3,
                        rebalance="auto", resilience=resil)
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=2, seed=7))
        assert srv.step() == 1
        clean = KPMServer(max_width=4, engine="sim", workers=2,
                          rebalance="auto")
        t_ref = clean.submit(Request(SPEC, n_moments=M, n_vectors=2, seed=7))
        clean.step()
        assert np.array_equal(t.result().moments, t_ref.result().moments)
        assert srv.workers == 2  # the dead rank stays retired

    def test_mp_batch_exposes_elastic_report(self):
        srv = KPMServer(max_width=4, engine="mp", workers=2,
                        rebalance="auto")
        t = srv.submit(Request(SPEC, n_moments=M, n_vectors=2, seed=7))
        assert srv.step() == 1
        assert not t.failed
        batch, _counters = srv.last_batches[0]
        rep = batch.elastic_report
        assert rep is not None and rep.segments
        assert not any(segment_exists(nm) for nm in rep.segment_names)
        assert "serve.batch.rebalances" in srv.metrics.counters


def test_moments_are_physical(system):
    """Sanity: the grid-mode eta carries the exact unnormalized trace —
    mu_0 = N, the same identity the row-sliced reductions preserve."""
    h, _scale, _blk, ref = system
    mu = eta_to_moments(ref).mean(axis=0).real
    assert mu[0] == pytest.approx(h.n_rows)
