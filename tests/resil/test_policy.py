"""RetryPolicy: validation and deterministic backoff."""

import pytest

from repro.resil import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        p = RetryPolicy()
        assert p.max_attempts == 3
        assert p.base_delay == 0.0

    @pytest.mark.parametrize("kw", [
        {"max_attempts": 0},
        {"max_attempts": -1},
        {"base_delay": -0.1},
        {"backoff_factor": -1.0},
        {"max_delay": -1.0},
        {"jitter": -0.5},
        {"attempt_deadline": 0.0},
        {"attempt_deadline": -5.0},
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            RetryPolicy(**kw)

    def test_frozen(self):
        p = RetryPolicy()
        with pytest.raises(Exception):
            p.max_attempts = 5


class TestBackoff:
    def test_zero_base_delay_never_sleeps(self):
        p = RetryPolicy(base_delay=0.0, jitter=0.5)
        assert all(p.backoff(k) == 0.0 for k in range(1, 6))

    def test_retry_index_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)

    def test_exponential_growth_without_jitter(self):
        p = RetryPolicy(base_delay=1.0, backoff_factor=2.0, jitter=0.0,
                        max_delay=100.0)
        assert p.backoff(1) == 1.0
        assert p.backoff(2) == 2.0
        assert p.backoff(3) == 4.0

    def test_max_delay_caps_the_schedule(self):
        p = RetryPolicy(base_delay=1.0, backoff_factor=10.0, jitter=0.0,
                        max_delay=5.0)
        assert p.backoff(4) == 5.0

    def test_jitter_is_deterministic_in_seed(self):
        p = RetryPolicy(base_delay=1.0, jitter=0.2, seed=7)
        q = RetryPolicy(base_delay=1.0, jitter=0.2, seed=7)
        assert [p.backoff(k) for k in range(1, 5)] == \
               [q.backoff(k) for k in range(1, 5)]

    def test_jitter_varies_with_seed(self):
        p = RetryPolicy(base_delay=1.0, jitter=0.2)
        d1 = p.backoff(1, seed=1)
        d2 = p.backoff(1, seed=2)
        assert d1 != d2

    def test_jitter_stays_within_band(self):
        p = RetryPolicy(base_delay=1.0, backoff_factor=1.0, jitter=0.1,
                        max_delay=1.0)
        for k in range(1, 20):
            d = p.backoff(k, seed=k)
            assert 0.9 <= d <= 1.1 + 1e-12
