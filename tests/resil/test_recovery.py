"""Recovery determinism: resumed runs are bitwise equal to uninterrupted ones.

The tentpole invariant of the resilience layer.  A fault-injected run that
crashes mid-recurrence, reloads the latest checkpoint, and finishes must
produce moments *bitwise identical* to an unfaulted run on the same
engine/partition/backend: the checkpoint snapshots the exact recurrence
state, the inherited eta prefix is spliced verbatim (never re-reduced),
and the suffix is recomputed by the identical reduction order.
"""

import numpy as np
import pytest

from repro.core.checkpoint import checkpointed_eta
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.mp import MpWorld
from repro.dist.partition import RowPartition
from repro.resil import FaultPlan, RetryPolicy, Supervisor
from repro.sparse.backend.native import native_available

needs_native = pytest.mark.skipif(
    not native_available(), reason="no C compiler for the native kernels"
)

M = 16  # checkpoint_every=2 with a crash at m=5 resumes from m=5


@pytest.fixture(scope="module")
def ham():
    from repro.physics import build_topological_insulator

    h, _ = build_topological_insulator(4, 4, 2)
    return h, lanczos_scale(h, seed=0)


def supervised(h, scale, blk, *, engine, workers, backend, plan, tmp_path,
               attempts=2):
    sup = Supervisor(
        RetryPolicy(max_attempts=attempts),
        checkpoint_every=2, checkpoint_path=tmp_path / "ck.npz",
        fault_plan=FaultPlan.parse(plan),
    )
    eta = sup.run_eta(h, scale, M, blk, engine=engine, workers=workers,
                      backend=backend)
    return eta, sup.report


class TestMpCrashRecovery:
    """Worker death mid-run: salvage the shared checkpoint, resume, match."""

    # workers x backend x R, per the recovery-determinism matrix
    CASES = [
        (2, "numpy", 1),
        (2, "numpy", 3),
        (3, "numpy", 2),
        pytest.param(2, "native", 2, marks=needs_native),
    ]

    @pytest.mark.parametrize("workers,backend,r", CASES)
    def test_bitwise_equal_to_unfaulted(self, ham, tmp_path, workers,
                                        backend, r):
        h, scale = ham
        blk = make_block_vector(h.n_rows, r, seed=3)
        part = RowPartition.equal(h.n_rows, workers, align=4)
        ref = distributed_eta(h, part, scale, M, blk, MpWorld(workers),
                              backend=backend)
        eta, report = supervised(
            h, scale, blk, engine="mp", workers=workers, backend=backend,
            plan="crash:rank=1,m=5", tmp_path=tmp_path,
        )
        assert np.array_equal(eta, ref)
        assert report.faults == 1
        assert report.attempts[0].error_class == "worker_death"
        assert report.resumes == 1
        # the crash hit at m=5; checkpoints land at m=2 and m=4
        assert report.resume_m == 5
        assert report.final_engine == "mp"

    def test_worker_exception_recovery(self, ham, tmp_path):
        h, scale = ham
        blk = make_block_vector(h.n_rows, 2, seed=4)
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, M, blk, MpWorld(2),
                              backend="numpy")
        eta, report = supervised(
            h, scale, blk, engine="mp", workers=2, backend="numpy",
            plan="raise:rank=0,m=6", tmp_path=tmp_path,
        )
        assert np.array_equal(eta, ref)
        assert report.attempts[0].error_class == "worker_exception"
        assert report.resumes == 1

    def test_persistent_crash_degrades_to_sim(self, ham, tmp_path):
        h, scale = ham
        blk = make_block_vector(h.n_rows, 2, seed=5)
        part = RowPartition.equal(h.n_rows, 2, align=4)
        ref = distributed_eta(h, part, scale, M, blk, SimWorld(2),
                              backend="numpy")
        # the crash chases the job across both mp attempts; the sim rung
        # (attempt 3) resumes from the salvaged checkpoint and finishes
        eta, report = supervised(
            h, scale, blk, engine="mp", workers=2, backend="numpy",
            plan="crash:rank=1,m=5,attempt=1;crash:rank=1,m=5,attempt=2",
            tmp_path=tmp_path,
        )
        assert np.allclose(eta, ref, atol=1e-12, rtol=0)
        assert report.faults == 2
        assert report.engine_degradations == 1
        assert report.final_engine == "sim"
        assert report.resumes >= 1


class TestSerialRecoveryMatrix:
    """The same invariant on the serial engine, across backends."""

    BACKENDS = ["numpy", pytest.param("native", marks=needs_native)]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("r", [1, 3])
    def test_bitwise_equal_to_unfaulted(self, ham, tmp_path, backend, r):
        h, scale = ham
        blk = make_block_vector(h.n_rows, r, seed=6)
        ref = checkpointed_eta(h, scale, M, blk, backend=backend)
        eta, report = supervised(
            h, scale, blk, engine="serial", workers=1, backend=backend,
            plan="raise:rank=0,m=5", tmp_path=tmp_path,
        )
        assert np.array_equal(eta, ref)
        assert report.resumes == 1


class TestSimRecoveryMatrix:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_bitwise_equal_to_unfaulted(self, ham, tmp_path, workers):
        h, scale = ham
        blk = make_block_vector(h.n_rows, 2, seed=7)
        part = RowPartition.equal(h.n_rows, workers, align=4)
        ref = distributed_eta(h, part, scale, M, blk, SimWorld(workers),
                              backend="numpy")
        eta, report = supervised(
            h, scale, blk, engine="sim", workers=workers, backend="numpy",
            plan="crash:rank=1,m=5", tmp_path=tmp_path,
        )
        assert np.array_equal(eta, ref)
        assert report.resumes == 1
        assert report.resume_m == 5
