"""Slow smoke test: the ``tools/check_native.py`` script end to end.

Excluded from the default run (``-m "not slow"`` in pyproject.toml);
select it explicitly with ``pytest -m slow``.  Runs the checker in a
fresh interpreter so it exercises the same path an operator would —
compile/load, parity in both formats, and the numpy-vs-native timing.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sparse.backend.native import native_available, native_error

REPO = Path(__file__).resolve().parents[2]


@pytest.mark.slow
def test_check_native_script():
    if not native_available():
        pytest.skip(f"native backend unavailable: {native_error()}")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_native.py"),
         "--nx", "16", "--nz", "8"],
        capture_output=True,
        text=True,
        timeout=300,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    assert proc.returncode == 0, (
        f"check_native.py failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert "native backend healthy" in proc.stdout
