"""Every example script must run end to end (small parameters)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["--nx", "6", "--nz", "3", "--moments", "64",
                       "--vectors", "2"]),
    ("topological_insulator_dos.py", ["--nx", "8", "--nz", "3",
                                      "--moments", "64", "--vectors", "2"]),
    ("quantum_dot_superlattice.py", ["--nx", "8", "--nz", "2",
                                     "--moments", "32", "--nk", "3"]),
    ("heterogeneous_cluster_simulation.py", ["--nx", "6", "--nz", "3",
                                             "--moments", "16",
                                             "--vectors", "2"]),
    ("eigenvalue_counting.py", ["--nx", "4", "--nz", "2", "--moments", "64",
                                "--vectors", "8"]),
    ("graphene_dos.py", ["--cells", "10", "--moments", "128",
                         "--vectors", "4"]),
    ("time_evolution.py", ["--nx", "6", "--nz", "2", "--tmax", "2",
                           "--steps", "3"]),
    ("spectral_filter.py", ["--nx", "4", "--nz", "2", "--order", "512"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {c[0] for c in CASES} <= present
    assert "quickstart.py" in present
