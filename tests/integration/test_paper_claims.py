"""Every quantitative headline claim of the paper, in one place.

Each test cites the paper location of the claim it verifies. This file
is the executable summary of EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.dist.scaling_model import ClusterModel, square_weak_scaling_domains
from repro.perf.arch import IVB, PIZ_DAINT_NODE
from repro.perf.balance import bmin, bmin_limit, naive_balance
from repro.perf.roofline import (
    custom_roofline,
    gpu_level_bandwidths,
    memory_bound_performance,
    node_performance,
)
from repro.perf.traffic import omega_parametric


class TestSectionIII:
    def test_eq5_closed_form(self):
        """Eq. (5): B_min(R) = (260/R + 48)/138 bytes/flop."""
        for r in (1, 4, 32):
            assert bmin(r) == pytest.approx((260 / r + 48) / 138, rel=1e-12)

    def test_eq6(self):
        """Eq. (6): B_min(1) ~ 2.23 bytes/flop."""
        assert bmin(1) == pytest.approx(2.23, abs=0.005)

    def test_eq7(self):
        """Eq. (7): lim B_min ~ 0.35 bytes/flop."""
        assert bmin_limit() == pytest.approx(0.348, abs=0.005)

    def test_vector_traffic_cascade(self):
        """Section III: 13 -> 3 vector transfers per inner iteration."""
        # difference of balances is exactly 10 S_d / 138 flops per row
        assert (naive_balance() - bmin(1)) * 138 == pytest.approx(160.0)


class TestSectionV:
    def test_fig7_roofline_22gf(self):
        """Fig. 7: IVB roofline at B_min(1) is ~22.4 Gflop/s."""
        assert memory_bound_performance(IVB.bandwidth_gbs, bmin(1)) == \
            pytest.approx(22.4, abs=0.3)

    def test_fig8_bound_migration(self):
        """Section V-A: memory-bound at small R, cache-bound at large R."""
        d1 = custom_roofline(IVB, 1)
        d32 = custom_roofline(IVB, 32, omega=omega_parametric(
            32, 1_600_000, 13, IVB.llc_bytes, 80_000))
        assert d1["p_star"] == d1["p_mem"]
        assert d32["p_star"] == d32["p_llc"]

    def test_fig8_model_within_15_percent(self):
        """Section V-A: 'our refined model does not deviate by more than
        15% from the measurement' — measured ~65 Gflop/s at large R."""
        p = custom_roofline(IVB, 32)["p_star"]
        assert abs(p - 65.0) / 65.0 <= 0.15

    def test_fig10_r1_memory_bound(self):
        """Section V-B: 'At R = 1 the DRAM bandwidth is around 150 GB/s
        ... equal to the maximum attainable bandwidth on this device'."""
        from repro.perf.arch import K20M

        bw = gpu_level_bandwidths(K20M, "spmmv", 1)
        assert bw["dram"] == pytest.approx(150.0, rel=0.03)

    def test_fig10_bottleneck_moves_to_l2(self):
        """Section V-B: with growing R the L2 becomes the bottleneck for
        kernels without on-the-fly dot products."""
        from repro.perf.arch import K20M

        bw = gpu_level_bandwidths(K20M, "aug_spmmv_nodot", 64)
        assert bw["l2"] == pytest.approx(K20M.llc_bandwidth_gbs, rel=0.03)
        assert bw["dram"] < K20M.bandwidth_gbs


class TestSectionVI:
    def test_10x_node_speedup(self):
        """Section VI-B: 'more than a factor of 10' naive CPU -> full
        heterogeneous."""
        s0 = node_performance(PIZ_DAINT_NODE, "naive", r=32)
        s2 = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        assert s2["heterogeneous"] / s0["cpu"] > 10.0

    def test_2_3x_gpu_speedup(self):
        """Section VI-B: 'a speed-up of 2.3x can be achieved by
        algorithmic optimizations' on the GPU."""
        s0 = node_performance(PIZ_DAINT_NODE, "naive", r=32)
        s2 = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        assert s2["gpu"] / s0["gpu"] == pytest.approx(2.3, abs=0.4)

    def test_36_percent_cpu_contribution(self):
        """Section VI-B: 'another 36% can be gained by enabling fully
        heterogeneous execution including the CPU'."""
        s2 = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        gain = s2["heterogeneous"] / s2["gpu"] - 1
        assert 0.2 <= gain <= 0.5

    def test_85_90_percent_efficiency(self):
        """Section VI-B: 'parallel efficiency ... tops out at 85-90%'."""
        s2 = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        assert 0.80 <= s2["parallel_efficiency"] <= 0.92

    def test_100_tflops_at_1024_nodes(self):
        """Abstract / Section VI-C: 'more than 100 Tflop/s on 1024 nodes
        ... equivalent to almost 10% of the aggregated peak'."""
        cm = ClusterModel(r=32)
        tf = cm.solve_tflops((6400, 6400, 40), 1024, 2000)
        assert tf > 100.0
        peak_tf = 1024 * PIZ_DAINT_NODE.aggregate_peak_gflops / 1000.0
        assert 0.06 < tf / peak_tf < 0.12

    def test_largest_system_6_5e9_rows(self):
        """Section VI-C: 'the largest system ... over 6.5e9 rows'."""
        nx, ny, nz = square_weak_scaling_domains([1024])[0]
        assert 4 * nx * ny * nz > 6.5e9

    def test_table3_throughput_2x(self):
        """Section VI-C: throughput mode 'more than a factor of two more
        expensive in terms of compute resources'."""
        cm = ClusterModel(r=32)
        big = (6400, 6400, 40)
        ratio = cm.node_hours(big, 288, 2000, variant="aug_spmv") / \
            cm.node_hours(big, 1024, 2000, variant="aug_spmmv")
        assert ratio > 1.9

    def test_table3_8_percent_reduction_gain(self):
        """Section VI-C: 'Reducing the number of global reductions
        increases the performance by 8%'."""
        cm = ClusterModel(r=32)
        big = (6400, 6400, 40)
        t_star = cm.solve_time(big, 1024, 2000, variant="aug_spmmv*")
        t_opt = cm.solve_time(big, 1024, 2000, variant="aug_spmmv")
        assert t_star / t_opt - 1 == pytest.approx(0.08, abs=0.06)


class TestApplication:
    def test_nnz_13n(self):
        """Section I-B: 'the number of non-zero entries is N_nz ~ 13N'."""
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(8, 8, 8, pbc=(True, True, True))
        assert h.nnz == 13 * h.n_rows

    def test_dimension_4nxnynz(self):
        """Section I-B: 'the matrix H ... has dimension N = 4 Nx Ny Nz'."""
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(5, 6, 7)
        assert h.n_rows == 4 * 5 * 6 * 7

    def test_complex_hermitian(self):
        """Section I-B: 'The matrix is complex and Hermitian'."""
        from repro.physics import build_topological_insulator

        h, _ = build_topological_insulator(4, 4, 4)
        assert h.data.dtype == np.complex128
        assert h.is_hermitian()
        assert np.abs(h.data.imag).max() > 0  # genuinely complex
