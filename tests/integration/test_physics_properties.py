"""Physics-level invariants of the full pipeline (property-style)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moments import compute_dos_moments, compute_eta, eta_to_moments
from repro.core.reconstruct import integrate_density, reconstruct_dos
from repro.core.scaling import SpectralScale, lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.physics import build_topological_insulator
from repro.physics.graphene import build_graphene_dot_lattice
from repro.sparse.csr import CSRMatrix


class TestParticleHoleSymmetry:
    """The clean TI and graphene Hamiltonians anticommute with a local
    operator, so tr T_m(H~) = 0 for odd m when the spectral map is
    centered (b = 0)."""

    def test_ti_odd_trace_moments_vanish(self):
        h, _ = build_topological_insulator(4, 4, 4, pbc=(True, True, True))
        lo, hi = h.gershgorin_bounds()
        bound = max(abs(lo), abs(hi))
        scale = SpectralScale.from_bounds(-bound, bound)  # b = 0 exactly
        assert scale.b == 0.0
        n = h.n_rows
        # exact trace via all unit vectors
        from repro.core.stochastic import unit_block_vector

        blk = unit_block_vector(n, np.arange(n))
        mu = compute_dos_moments(h, scale, 16, blk) * n
        assert np.allclose(mu[1::2], 0.0, atol=1e-8 * n)
        assert mu[0] == pytest.approx(n)

    def test_graphene_dos_symmetric(self):
        h, model = build_graphene_dot_lattice(12, 12)
        scale = SpectralScale.from_bounds(-3.3, 3.3)
        blk = make_block_vector(h.n_rows, 64, seed=0)
        mu = compute_dos_moments(h, scale, 128, blk)
        e = np.linspace(-2.8, 2.8, 81)
        _, rho = reconstruct_dos(mu, scale, energies=e)
        # stochastic noise bound: the symmetric part dominates
        asym = np.abs(rho - rho[::-1]).max() / rho.max()
        assert asym < 0.15


class TestSumRules:
    def test_dos_integral_equals_dimension(self):
        for builder in (
            lambda: build_topological_insulator(5, 4, 3)[0],
            lambda: build_graphene_dot_lattice(8, 8)[0],
        ):
            h = builder()
            scale = lanczos_scale(h, seed=0)
            blk = make_block_vector(h.n_rows, 24, seed=1)
            mu = compute_dos_moments(h, scale, 96, blk)
            e, rho = reconstruct_dos(mu, scale, n_points=512)
            assert integrate_density(e, rho) == pytest.approx(
                h.n_rows, rel=0.04
            )

    def test_first_moment_is_trace_over_n(self):
        """mu_1 = tr(H~)/N-ish: for the traceless clean TI with centered
        map, tr H~ = 0."""
        h, _ = build_topological_insulator(4, 4, 3)
        lo, hi = h.gershgorin_bounds()
        bound = max(abs(lo), abs(hi))
        scale = SpectralScale.from_bounds(-bound, bound)
        from repro.core.stochastic import unit_block_vector

        n = h.n_rows
        mu = compute_dos_moments(
            h, scale, 4, unit_block_vector(n, np.arange(n))
        ) * n
        assert abs(mu[1]) < 1e-8 * n


class TestInvariances:
    def test_dos_invariant_under_spectral_shift(self):
        """Shifting H by c*Identity shifts the DOS grid, nothing else."""
        h, model = build_topological_insulator(4, 4, 2)
        shift = 0.7
        h_shifted = model.build(np.full(model.lattice.n_sites, shift))
        blk = make_block_vector(h.n_rows, 16, seed=2)

        scale_a = lanczos_scale(h, seed=3)
        scale_b = SpectralScale(
            a=scale_a.a, b=scale_a.b + shift,
            emin=scale_a.emin + shift, emax=scale_a.emax + shift,
        )
        mu_a = compute_dos_moments(h, scale_a, 32, blk)
        mu_b = compute_dos_moments(h_shifted, scale_b, 32, blk)
        assert np.allclose(mu_a, mu_b, atol=1e-9 * h.n_rows)

    def test_moments_bounded_by_mu0(self):
        """|mu_m| <= mu_0 for trace moments (|T_m| <= 1 on the spectrum)."""
        h, _ = build_topological_insulator(5, 5, 2)
        scale = lanczos_scale(h, seed=0)
        from repro.core.stochastic import unit_block_vector

        n = h.n_rows
        mu = compute_dos_moments(
            h, scale, 64, unit_block_vector(n, np.arange(n))
        )
        assert np.all(np.abs(mu[1:]) <= mu[0] + 1e-9)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_moment_engine_invariants_random_hermitian(seed):
    """For arbitrary Hermitian matrices: even eta real-positive, engines
    agree, |mu_m| bounded by mu_0 per vector."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 40))
    d = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    d = (d + d.conj().T) * (rng.random((n, n)) < 0.4)
    d = (d + d.conj().T) / 2
    h = CSRMatrix.from_dense(d)
    lam = np.linalg.eigvalsh(d)
    pad = max(lam.max() - lam.min(), 1.0) * 0.05
    scale = SpectralScale.from_bounds(lam.min() - pad, lam.max() + pad)
    blk = make_block_vector(n, 2, seed=seed % 1000)
    eta1 = compute_eta(h, scale, 8, blk, "naive")
    eta2 = compute_eta(h, scale, 8, blk, "aug_spmmv")
    assert np.allclose(eta1, eta2, atol=1e-8)
    assert np.all(eta1[:, 0::2].real > 0)
    mu = eta_to_moments(eta1)
    assert np.all(
        np.abs(mu[:, 1:]) <= np.abs(mu[:, 0:1]) * (1 + 1e-9)
    )
