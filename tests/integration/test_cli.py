"""Command-line interface end to end."""

import numpy as np
import pytest

from repro.cli import main
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import write_matrix_market


class TestDos:
    def test_runs(self, capsys):
        rc = main(["dos", "--nx", "6", "--nz", "3", "--moments", "64",
                   "--vectors", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DOS integral" in out
        assert "rho(E)" in out

    def test_engine_option(self, capsys):
        rc = main(["dos", "--nx", "4", "--nz", "2", "--moments", "32",
                   "--vectors", "1", "--engine", "naive"])
        assert rc == 0

    @pytest.mark.parametrize("engine", ["sim", "mp"])
    def test_distributed_engines(self, engine, capsys):
        rc = main(["dos", "--nx", "4", "--nz", "2", "--moments", "32",
                   "--vectors", "2", "--engine", engine, "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"distributed engine: {engine} (2 workers, overlap on)" in out
        assert "communication:" in out
        assert "halo" in out and "allreduce_final" in out

    def test_distributed_matches_serial(self, capsys):
        argv = ["dos", "--nx", "4", "--nz", "2", "--moments", "32",
                "--vectors", "2", "--seed", "5"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--engine", "sim", "--workers", "3",
                            "--weights", "1,2,1"]) == 0
        sim = capsys.readouterr().out
        # same integral line => same moments end to end
        pick = [l for l in serial.splitlines() if "DOS integral" in l]
        assert pick and pick[0] in sim

    def test_metrics_flag(self, capsys):
        rc = main(["dos", "--nx", "4", "--nz", "2", "--moments", "16",
                   "--vectors", "2", "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MEASURED vs MODEL" in out
        assert "exact match: yes" in out
        assert "METRICS" in out and "aug_spmmv" in out

    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import aggregate_spans, read_trace

        path = tmp_path / "run.jsonl"
        rc = main(["dos", "--nx", "4", "--nz", "2", "--moments", "16",
                   "--vectors", "2", "--trace", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out and str(path) in out
        records = read_trace(path)
        assert records
        agg = aggregate_spans(records)
        assert "aug_spmmv" in agg and agg["aug_spmmv"]["flops"] > 0

    def test_metrics_with_mp_engine(self, capsys):
        rc = main(["dos", "--nx", "4", "--nz", "2", "--moments", "16",
                   "--vectors", "2", "--engine", "mp", "--workers", "2",
                   "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        # merged worker counters still equal the serial analytic charge
        assert "exact match: yes" in out
        assert "rank0.aug_spmmv" in out and "rank1.aug_spmmv" in out

    def test_bad_weights_rejected(self, capsys):
        rc = main(["dos", "--nx", "4", "--nz", "2", "--moments", "32",
                   "--vectors", "1", "--engine", "sim", "--weights", "a,b"])
        assert rc == 1
        assert "--weights" in capsys.readouterr().err

    def test_from_mtx(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        d = rng.normal(size=(30, 30))
        d = d + d.T
        m = CSRMatrix.from_dense(d, tol=1.0)
        path = tmp_path / "m.mtx"
        write_matrix_market(m, path)
        rc = main(["dos", "--mtx", str(path), "--moments", "32",
                   "--vectors", "2"])
        assert rc == 0
        assert "30 rows" in capsys.readouterr().out


class TestInfo:
    def test_ti_structure(self, capsys):
        rc = main(["info", "--nx", "6", "--nz", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stencil-like:  True" in out
        assert "diagonals" in out


class TestReport:
    def test_sections(self, capsys):
        rc = main(["report", "--nx", "10", "--nz", "4", "--nodes", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ARCHITECTURES" in out and "CLUSTER" in out


class TestScaling:
    def test_table(self, capsys):
        rc = main(["scaling", "--nodes-list", "1,4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "square" in out and "bar" in out

    def test_invalid_square_nodes_warns(self, capsys):
        rc = main(["scaling", "--nodes-list", "8"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "square" in captured.err  # square family skipped with note
        assert "bar" in captured.out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["fly"])
