"""Cross-subsystem integration: physics -> sparse -> core -> dist -> hw."""

import numpy as np
import pytest

from repro.core.moments import MomentEngine, compute_eta, eta_to_moments
from repro.core.reconstruct import integrate_density
from repro.core.scaling import lanczos_scale
from repro.core.solver import KPMSolver
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.partition import RowPartition, weights_from_performance
from repro.hw.gpu import KeplerGpu
from repro.perf.arch import PIZ_DAINT_NODE
from repro.perf.roofline import node_performance
from repro.physics import build_topological_insulator
from repro.sparse.sell import SellMatrix


@pytest.fixture(scope="module")
def system():
    h, model = build_topological_insulator(8, 8, 4)
    scale = lanczos_scale(h, seed=0)
    return h, model, scale


class TestFullPipelineConsistency:
    """The same moments must come out of every computational path."""

    def test_all_paths_agree(self, system):
        h, _, scale = system
        n = h.n_rows
        r, m = 4, 16
        blk = make_block_vector(n, r, seed=3)

        # 1. serial CSR, three engines
        etas = {
            eng: compute_eta(h, scale, m, blk, eng)
            for eng in MomentEngine
        }
        ref = etas[MomentEngine.NAIVE]
        for eng, eta in etas.items():
            assert np.allclose(eta, ref, atol=1e-9), eng

        # 2. serial SELL
        sell = SellMatrix(h, chunk_height=32, sigma=64)
        assert np.allclose(
            compute_eta(sell, scale, m, blk, "aug_spmmv"), ref, atol=1e-9
        )

        # 3. distributed, heterogeneous weights from the perf model
        perf = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        weights = weights_from_performance([perf["cpu"], perf["gpu"]])
        part = RowPartition.from_weights(n, weights, align=4)
        world = SimWorld(2, devices=["cpu", "gpu"])
        assert np.allclose(
            distributed_eta(h, part, scale, m, blk, world), ref, atol=1e-9
        )

        # 4. functional GPU simulator driving the recurrence manually
        a, b = scale.a, scale.b
        v = blk.copy()
        w = np.ascontiguousarray((h.to_dense() @ v - b * v) * a)
        eta_gpu = np.empty((r, m), dtype=complex)
        eta_gpu[:, 0] = np.einsum("nr,nr->r", np.conj(v), v)
        eta_gpu[:, 1] = np.einsum("nr,nr->r", np.conj(w), v)
        gpu = KeplerGpu()
        for mi in range(1, m // 2):
            v, w = w, v
            ee, eo, _ = gpu.run_aug_spmmv(h, v, w, a, b)
            eta_gpu[:, 2 * mi] = ee
            eta_gpu[:, 2 * mi + 1] = eo
        assert np.allclose(eta_gpu, ref, atol=1e-7)


class TestPhysicsAcceptance:
    def test_dos_against_dense_diagonalization(self, system):
        h, _, _ = system
        solver = KPMSolver(h, n_moments=512, n_vectors=32, seed=9)
        dos = solver.dos()
        lam = np.linalg.eigvalsh(h.to_dense())
        # cumulative eigenvalue count at quartile energies
        for q in (0.25, 0.5, 0.75):
            e_cut = np.quantile(lam, q)
            exact = (lam <= e_cut).sum()
            est = integrate_density(
                dos.energies, dos.rho, dos.energies[0], float(e_cut)
            )
            assert est == pytest.approx(exact, abs=0.05 * h.n_rows)

    def test_counters_track_whole_solve(self, system):
        from repro.perf.balance import kpm_flops
        from repro.util.counters import PerfCounters

        h, _, scale = system
        c = PerfCounters()
        r, m = 2, 32
        blk = make_block_vector(h.n_rows, r, seed=0)
        compute_eta(h, scale, m, blk, "aug_spmmv", counters=c)
        expected = (m / 2 - 1) * kpm_flops(h.n_rows, h.nnz, r, 2) \
            + r * h.nnz * 8
        assert c.flops == pytest.approx(expected)
        assert c.code_balance < 3.0  # complex KPM sits below 3 B/F


class TestScalePipeline:
    def test_weights_partition_scaling_consistency(self):
        """Partition weights, the node model, and the cluster model tell
        one coherent story: the weighted node at stage 2 outperforms the
        naive node by the Fig. 11 factor, which carries through to the
        Table III node-hour gap."""
        from repro.dist.scaling_model import ClusterModel

        cm = ClusterModel(r=32)
        s2 = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
        s1 = node_performance(PIZ_DAINT_NODE, "aug_spmv", r=1)
        node_ratio = s2["heterogeneous"] / s1["heterogeneous"]
        nh_ratio = cm.node_hours((6400, 6400, 40), 1024, 2000,
                                 variant="aug_spmv") / cm.node_hours(
            (6400, 6400, 40), 1024, 2000, variant="aug_spmmv")
        # communication shifts the ratio a little, not qualitatively
        assert nh_ratio == pytest.approx(node_ratio, rel=0.25)
        assert nh_ratio > 1.5
