"""Warp shuffle and reduction semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.warp import reduction_steps, shfl_down, warp_reduce_sum


class TestShflDown:
    def test_basic_shift(self):
        v = np.arange(8.0)
        out = shfl_down(v, 1, 8)
        assert np.allclose(out[:-1], v[1:])
        assert out[-1] == v[-1]  # out-of-range lane keeps its value

    def test_group_boundaries(self):
        v = np.arange(8.0)
        out = shfl_down(v, 2, 4)
        assert np.allclose(out, [2, 3, 2, 3, 6, 7, 6, 7])

    def test_delta_zero_identity(self):
        v = np.arange(16.0)
        assert np.allclose(shfl_down(v, 0, 16), v)

    def test_batched_warps(self):
        v = np.arange(12.0).reshape(3, 4)
        out = shfl_down(v, 1, 4)
        assert out.shape == (3, 4)
        assert np.allclose(out[:, :-1], v[:, 1:])

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            shfl_down(np.zeros(6), 1, 3)

    def test_lane_count_multiple_of_width(self):
        with pytest.raises(ValueError):
            shfl_down(np.zeros(6), 1, 4)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            shfl_down(np.zeros(4), -1, 4)


class TestWarpReduce:
    @pytest.mark.parametrize("width", [1, 2, 4, 8, 16, 32])
    def test_lane0_holds_sum(self, width):
        rng = np.random.default_rng(width)
        v = rng.normal(size=width)
        out = warp_reduce_sum(v, width)
        assert out[0] == pytest.approx(v.sum())

    def test_groups_reduced_independently(self):
        v = np.arange(8.0)
        out = warp_reduce_sum(v, 4)
        assert out[0] == pytest.approx(v[:4].sum())
        assert out[4] == pytest.approx(v[4:].sum())

    def test_complex_values(self):
        v = np.arange(4) + 1j * np.arange(4)
        out = warp_reduce_sum(v, 4)
        assert out[0] == pytest.approx(v.sum())

    def test_reduction_steps(self):
        assert reduction_steps(1) == 0
        assert reduction_steps(2) == 1
        assert reduction_steps(32) == 5
        with pytest.raises(ValueError):
            reduction_steps(3)


@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=32, max_size=32),
    st.sampled_from([1, 2, 4, 8, 16, 32]),
)
@settings(max_examples=50, deadline=None)
def test_reduce_matches_numpy_sum(values, width):
    v = np.array(values)
    out = warp_reduce_sum(v, width)
    for g in range(32 // width):
        assert out[g * width] == pytest.approx(
            v[g * width : (g + 1) * width].sum(), abs=1e-9, rel=1e-9
        )
