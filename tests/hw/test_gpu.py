"""Functional GPU simulator: numerical fidelity and transaction counts."""

import numpy as np
import pytest

from repro.hw.gpu import GpuLaunchConfig, KeplerGpu
from repro.physics import build_topological_insulator
from repro.sparse.csr import CSRMatrix
from repro.sparse.fused import aug_spmmv_step
from repro.util.constants import S_D, S_I
from repro.util.errors import SimulationError


@pytest.fixture(scope="module")
def ti():
    h, _ = build_topological_insulator(4, 4, 3)
    return h


def random_blocks(n, r, seed=0):
    rng = np.random.default_rng(seed)
    V = np.ascontiguousarray(rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r)))
    W = np.ascontiguousarray(rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r)))
    return V, W


class TestNumericalFidelity:
    @pytest.mark.parametrize("r", [1, 2, 4, 8, 16, 32])
    def test_matches_numpy_kernel(self, ti, r):
        n = ti.n_rows
        V, W = random_blocks(n, r)
        Wref = W.copy()
        ee_ref, eo_ref = aug_spmmv_step(ti, V.copy(), Wref, 0.2, -0.1)
        ee, eo, _ = KeplerGpu().run_aug_spmmv(ti, V, W, 0.2, -0.1)
        assert np.allclose(W, Wref, atol=1e-10)
        assert np.allclose(ee, ee_ref, atol=1e-8)
        assert np.allclose(eo, eo_ref, atol=1e-8)

    def test_plain_spmmv_mode(self, ti):
        n = ti.n_rows
        V, W = random_blocks(n, 8, seed=3)
        _, _, _ = KeplerGpu().run_aug_spmmv(
            ti, V, W, 0, 0, with_dots=False, fused_update=False
        )
        assert np.allclose(W, ti.to_dense() @ V, atol=1e-10)

    def test_nodot_mode_returns_none(self, ti):
        V, W = random_blocks(ti.n_rows, 4)
        ee, eo, _ = KeplerGpu().run_aug_spmmv(
            ti, V, W, 0.3, 0.0, with_dots=False
        )
        assert ee is None and eo is None

    def test_ragged_rows(self):
        """Predication: rows of very different lengths."""
        rows = [0] * 9 + [1] + [3] * 4
        cols = list(range(9)) + [0] + [2, 5, 8, 9]
        m = CSRMatrix.from_coo(rows, cols, np.arange(1, 15) * (1 + 1j), (10, 10))
        V, W = random_blocks(10, 4, seed=5)
        Wref = W.copy()
        aug_spmmv_step(m, V.copy(), Wref, 0.7, 0.2)
        _, _, stats = KeplerGpu().run_aug_spmmv(m, V, W, 0.7, 0.2)
        assert np.allclose(W, Wref, atol=1e-10)
        assert stats.predicated_lane_steps > 0
        assert stats.sm_efficiency() < 1.0

    def test_r_must_divide_warp(self, ti):
        V, W = random_blocks(ti.n_rows, 3)
        with pytest.raises(SimulationError):
            KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)

    def test_empty_matrix_rows(self):
        m = CSRMatrix.from_coo([0], [0], [1.0], (40, 40))
        V, W = random_blocks(40, 2)
        Wref = W.copy()
        aug_spmmv_step(m, V.copy(), Wref, 0.5, 0.1)
        KeplerGpu().run_aug_spmmv(m, V, W, 0.5, 0.1)
        assert np.allclose(W, Wref, atol=1e-12)


class TestStats:
    def test_warp_and_block_counts(self, ti):
        n = ti.n_rows  # 192
        r = 8
        V, W = random_blocks(n, r)
        cfg = GpuLaunchConfig(block_dim=128)
        _, _, stats = KeplerGpu(config=cfg).run_aug_spmmv(ti, V, W, 1, 0)
        rows_per_warp = 32 // r
        assert stats.warps == -(-n // rows_per_warp)
        assert stats.blocks == -(-stats.warps // (128 // 32))

    def test_tex_requests_linear_in_r(self, ti):
        """The paper's texture-broadcast observation, counted exactly:
        every active lane requests its row's matrix element."""
        volumes = []
        for r in (2, 4, 8):
            V, W = random_blocks(ti.n_rows, r)
            _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
            volumes.append(s.tex_bytes)
            assert s.tex_bytes == ti.nnz * r * S_D
        assert volumes[1] == 2 * volumes[0]
        assert volumes[2] == 4 * volumes[0]

    def test_active_lane_steps_equal_nnz_times_r(self, ti):
        r = 4
        V, W = random_blocks(ti.n_rows, r)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        assert s.active_lane_steps == ti.nnz * r

    def test_dram_at_least_matrix_stream(self, ti):
        V, W = random_blocks(ti.n_rows, 4)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        assert s.dram_bytes >= ti.nnz * (S_D + S_I)

    def test_l2_bytes_include_streams(self, ti):
        r = 8
        V, W = random_blocks(ti.n_rows, r)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        assert s.l2_bytes >= 3 * ti.n_rows * r * S_D

    def test_shuffle_ops_log2(self, ti):
        r = 8  # rows_per_warp = 4 -> 2 shuffle steps per warp per product
        V, W = random_blocks(ti.n_rows, r)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        assert s.shuffle_ops == 2 * s.warps * 32 * 2

    def test_no_shuffles_when_r_equals_warp(self, ti):
        V, W = random_blocks(ti.n_rows, 32)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        assert s.shuffle_ops == 0

    def test_estimate_time_positive(self, ti):
        from repro.perf.arch import K20M

        V, W = random_blocks(ti.n_rows, 8)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        assert s.estimate_time(K20M) > 0

    def test_rejects_cpu_arch(self):
        from repro.perf.arch import IVB

        with pytest.raises(ValueError):
            KeplerGpu(arch=IVB)


class TestModelValidation:
    def test_analytic_tex_matches_simulator(self, ti):
        """The analytic traffic model and the functional simulator must
        agree on the texture request volume (both count per-lane loads)."""
        from repro.perf.arch import K20M
        from repro.perf.traffic import gpu_level_traffic

        r = 8
        V, W = random_blocks(ti.n_rows, r)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        analytic = gpu_level_traffic("aug_spmmv", r, ti.n_rows, ti.nnzr, K20M)
        assert s.tex_bytes == pytest.approx(analytic.tex, rel=1e-6)

    def test_l2_gather_volume_close_to_analytic(self, ti):
        from repro.perf.arch import K20M
        from repro.perf.traffic import gpu_level_traffic

        r = 8
        V, W = random_blocks(ti.n_rows, r)
        _, _, s = KeplerGpu().run_aug_spmmv(ti, V, W, 1, 0)
        analytic = gpu_level_traffic("aug_spmmv", r, ti.n_rows, ti.nnzr, K20M)
        assert s.l2_bytes == pytest.approx(analytic.l2, rel=0.35)
