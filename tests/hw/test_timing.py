"""GPU timing model on counted kernel runs."""

import numpy as np
import pytest

from repro.hw.gpu import GpuRunStats, KeplerGpu
from repro.hw.timing import GpuTimingModel
from repro.perf.arch import IVB, K20M, K20X
from repro.physics import build_topological_insulator


@pytest.fixture(scope="module")
def counted_run():
    h, _ = build_topological_insulator(6, 6, 4)
    rng = np.random.default_rng(0)
    n = h.n_rows
    V = np.ascontiguousarray(rng.normal(size=(n, 8)) + 1j * rng.normal(size=(n, 8)))
    W = np.ascontiguousarray(rng.normal(size=(n, 8)) + 1j * rng.normal(size=(n, 8)))
    _, _, stats = KeplerGpu().run_aug_spmmv(h, V, W, 0.3, 0.0)
    return stats


class TestEstimate:
    def test_components_positive(self, counted_run):
        t = GpuTimingModel().estimate(counted_run, K20M)
        for key in ("dram", "l2", "tex", "core", "total"):
            assert t[key] > 0
        assert t["total"] >= max(t["dram"], t["l2"], t["tex"], t["core"])

    def test_gflops_below_peak(self, counted_run):
        g = GpuTimingModel().gflops(counted_run, K20M)
        assert 0 < g < K20M.peak_gflops

    def test_faster_arch_faster(self, counted_run):
        m = GpuTimingModel()
        assert m.estimate(counted_run, K20X)["total"] <= m.estimate(
            counted_run, K20M
        )["total"] * 1.01

    def test_rejects_cpu(self, counted_run):
        with pytest.raises(ValueError):
            GpuTimingModel().estimate(counted_run, IVB)


class TestOccupancy:
    def test_few_warps_penalized(self):
        m = GpuTimingModel(warps_to_hide_latency=16)
        low = GpuRunStats(warps=13, dram_bytes=1 << 20, flops=1000)
        high = GpuRunStats(warps=13 * 64, dram_bytes=1 << 20, flops=1000)
        assert m.occupancy_factor(low, K20M) < 1.0
        assert m.occupancy_factor(high, K20M) == 1.0
        assert m.estimate(low, K20M)["dram"] > m.estimate(high, K20M)["dram"]

    def test_zero_warps_neutral(self):
        m = GpuTimingModel()
        assert m.occupancy_factor(GpuRunStats(), K20M) == 1.0


class TestShuffleLatency:
    def test_shuffles_add_time(self):
        m = GpuTimingModel()
        base = GpuRunStats(warps=1000, dram_bytes=1 << 20, flops=10_000)
        shuf = GpuRunStats(
            warps=1000, dram_bytes=1 << 20, flops=10_000,
            shuffle_ops=5_000_000,
        )
        assert m.estimate(shuf, K20M)["total"] > m.estimate(base, K20M)["total"]

    def test_predication_slows_core(self):
        m = GpuTimingModel()
        clean = GpuRunStats(warps=100, flops=1_000_000,
                            active_lane_steps=100, predicated_lane_steps=0)
        diverged = GpuRunStats(warps=100, flops=1_000_000,
                               active_lane_steps=50,
                               predicated_lane_steps=50)
        assert m.estimate(diverged, K20M)["core"] > m.estimate(
            clean, K20M
        )["core"]

    def test_zero_time_zero_gflops(self):
        g = GpuTimingModel().gflops(GpuRunStats(), K20M)
        assert g == 0.0
