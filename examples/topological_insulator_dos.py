#!/usr/bin/env python
"""Paper Fig. 1: DOS of a topological insulator with a dot superlattice.

Reproduces the Fig. 1 workflow at adjustable scale: the paper computes
the DOS of a 1600 x 1600 x 40 sample (N ~ 4e8, the 64-node weak-scaling
member); here the default is a laptop-sized sample with the same physics
(periodic x/y, open z, quantum-dot superlattice on the surface). Two
outputs mirror the paper's two panels: the full spectral range and the
zoom into the low-energy window around E = 0 where the dot-induced
states live.

Run:  python examples/topological_insulator_dos.py [--nx 40 --nz 10]
"""

import argparse

import numpy as np

from repro import KPMSolver, build_topological_insulator
from repro.core.reconstruct import integrate_density
from repro.physics.potentials import dot_superlattice_potential


def sketch(energies, rho, width=60, height=8, label=""):
    peak = rho.max() if rho.size else 1.0
    bins = np.linspace(energies[0], energies[-1], width + 1)
    centers = 0.5 * (bins[1:] + bins[:-1])
    binned = np.interp(centers, energies, rho)
    print(f"\n  {label}  (peak {peak:.3g})")
    for level in range(height, 0, -1):
        row = "".join("#" if r >= peak * level / height else " " for r in binned)
        print(f"  |{row}|")
    print(f"  {energies[0]:+.3f}" + " " * (width - 12) + f"{energies[-1]:+.3f}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=40, help="x = y extent")
    ap.add_argument("--nz", type=int, default=10)
    ap.add_argument("--moments", type=int, default=1024)
    ap.add_argument("--vectors", type=int, default=8)
    ap.add_argument("--vdot", type=float, default=0.153,
                    help="dot potential (paper Fig. 2 value)")
    ap.add_argument("--spacing", type=int, default=20,
                    help="dot superlattice period (paper: 100)")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    lat_shape = (args.nx, args.nx, args.nz)
    print(f"Building TI Hamiltonian on {lat_shape} "
          f"(paper Fig. 1 uses 1600 x 1600 x 40)...")
    h, model = build_topological_insulator(*lat_shape)
    pot = dot_superlattice_potential(
        model.lattice, v_dot=args.vdot, spacing=args.spacing
    )
    h = model.build(pot)
    print(f"  N = {h.n_rows:,}, nnz = {h.nnz:,} ({h.nnzr:.2f}/row), "
          f"{int((pot != 0).sum()):,} dot sites")

    solver = KPMSolver(
        h, n_moments=args.moments, n_vectors=args.vectors, seed=args.seed,
        engine="aug_spmmv",
    )
    dos = solver.dos()
    n_total = integrate_density(dos.energies, dos.rho)
    print(f"  DOS integral = {n_total:,.0f} / N = {h.n_rows:,}")

    # Panel 1: full range (paper's left panel, E in [-4, 4] roughly)
    sketch(dos.energies, dos.rho / h.n_rows, label="DOS, full spectral range")

    # Panel 2: zoom around E = 0 (paper's right panel, |E| < 0.15)
    zoom = np.linspace(-0.15, 0.15, 301)
    _, rho_zoom = __import__("repro.core.reconstruct", fromlist=["reconstruct_dos"]) \
        .reconstruct_dos(dos.moments, dos.scale, energies=zoom)
    sketch(zoom, rho_zoom / h.n_rows, label="DOS, zoom |E| < 0.15")

    print("\nNote: absolute peak positions depend on the (scaled-down) "
          "domain; the qualitative features of paper Fig. 1 — the broad "
          "band profile and the structured low-energy region — are "
          "reproduced at any size.")


if __name__ == "__main__":
    main()
