#!/usr/bin/env python
"""Eigenvalue counting for projection eigensolvers (paper Refs. [8], [22]).

One of the KPM-DOS applications the paper highlights: estimating the
number of eigenvalues in a target interval to size the search space of a
projection-based eigensolver (FEAST-style). This script compares the KPM
estimate against exact dense diagonalization across several intervals.

Run:  python examples/eigenvalue_counting.py [--nx 8]
"""

import argparse

import numpy as np

from repro import KPMSolver, build_topological_insulator


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=8,
                    help="lattice extent (kept small: dense diag reference)")
    ap.add_argument("--nz", type=int, default=4)
    ap.add_argument("--moments", type=int, default=512)
    ap.add_argument("--vectors", type=int, default=32)
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    h, _ = build_topological_insulator(args.nx, args.nx, args.nz)
    print(f"N = {h.n_rows:,} (dense reference feasible at this size)")

    lam = np.linalg.eigvalsh(h.to_dense())
    solver = KPMSolver(
        h, n_moments=args.moments, n_vectors=args.vectors, seed=args.seed
    )

    intervals = [(-1.0, 1.0), (-0.5, 0.5), (1.0, 3.0), (-6.0, 0.0)]
    print(f"\n{'interval':>16s} {'exact':>8s} {'KPM':>10s} {'rel.err':>9s}")
    for lo, hi in intervals:
        exact = int(((lam >= lo) & (lam <= hi)).sum())
        est = solver.eigencount(lo, hi)
        rel = abs(est - exact) / max(exact, 1)
        print(f"  [{lo:+5.1f},{hi:+5.1f}] {exact:>8d} {est:>10.1f} {rel:>8.1%}")

    print("\nA projection eigensolver would allocate ~1.2x the KPM "
          "estimate as its subspace dimension.")


if __name__ == "__main__":
    main()
