#!/usr/bin/env python
"""Heterogeneous distributed KPM on the simulated cluster.

Demonstrates the paper's Section VI workflow end to end on the simulated
MPI substrate:

1. build the TI Hamiltonian and partition its rows across simulated
   CPU/GPU ranks with performance-derived weights (paper Section VI-A),
2. run the distributed blocked KPM solver, verify it matches the serial
   result exactly, and inspect the halo-exchange message log,
3. price the communication with the Cray-Aries network model and print
   the predicted node-level and cluster-level performance.

Run:  python examples/heterogeneous_cluster_simulation.py [--nx 12]
"""

import argparse

import numpy as np

from repro import build_topological_insulator
from repro.core.moments import compute_eta, eta_to_moments
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist import (
    ClusterModel,
    RowPartition,
    SimWorld,
    distributed_eta,
    partition_matrix,
    weights_from_performance,
)
from repro.perf.arch import PIZ_DAINT_NODE
from repro.perf.roofline import node_performance


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=12)
    ap.add_argument("--nz", type=int, default=6)
    ap.add_argument("--moments", type=int, default=64)
    ap.add_argument("--vectors", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    h, _ = build_topological_insulator(args.nx, args.nx, args.nz)
    scale = lanczos_scale(h, seed=args.seed)
    blk = make_block_vector(h.n_rows, args.vectors, seed=args.seed)

    # ---- weights from the device performance model ---------------------
    perf = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=args.vectors)
    weights = weights_from_performance([perf["cpu"], perf["gpu"]])
    print(f"Device performance guess: CPU {perf['cpu']:.1f} Gflop/s, "
          f"GPU {perf['gpu']:.1f} Gflop/s -> weights "
          f"{weights[0]:.3f} / {weights[1]:.3f}")

    part = RowPartition.from_weights(h.n_rows, weights, align=4)
    print(f"Row partition: {part.counts().tolist()} of {h.n_rows} rows")

    # ---- distributed solve on the simulated SPMD world -----------------
    world = SimWorld(2, devices=["cpu", "gpu"])
    dist = partition_matrix(h, part)
    eta = distributed_eta(dist, None, scale, args.moments, blk, world)
    ref = compute_eta(h, scale, args.moments, blk, "aug_spmmv")
    err = np.abs(eta - ref).max()
    print(f"\nDistributed vs serial moments: max |diff| = {err:.2e}")
    assert err < 1e-8

    mu = eta_to_moments(eta).mean(axis=0).real
    print(f"mu_0 = {mu[0]:.1f} (N = {h.n_rows})")

    log = world.log
    print(f"\nCommunication log: {log.n_messages} messages, "
          f"{log.total_bytes:,} bytes")
    for phase, nbytes in sorted(log.bytes_by_phase().items()):
        print(f"  {phase:<16s} {nbytes:>12,} bytes")
    print(f"  halo rows per exchange: "
          f"{dist.pattern.total_rows_exchanged():,}")

    # ---- price a production run with the cluster model -----------------
    cm = ClusterModel(r=32)
    print("\nPredicted production performance (Piz Daint model, R=32):")
    for nodes in (1, 64, 1024):
        dom = {1: (400, 100, 40), 64: (1600, 1600, 40),
               1024: (6400, 6400, 40)}[nodes]
        tf = cm.solve_tflops(dom, nodes, 2000)
        print(f"  {nodes:>5d} nodes, domain {dom}: {tf:8.2f} Tflop/s")


if __name__ == "__main__":
    main()
