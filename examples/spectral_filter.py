#!/usr/bin/env python
"""KPM-assisted subspace extraction: eigencount + polynomial filter.

The workflow the paper's Refs. [8], [22] target: use KPM-DOS to predict
how many eigenvalues sit in a window, then build a FEAST-style filtered
random subspace of (slightly more than) that size and Rayleigh-Ritz it.
Both stages run on the same blocked KPM kernels.

Run:  python examples/spectral_filter.py [--nx 6 --nz 3]
"""

import argparse

import numpy as np

from repro import KPMSolver, build_topological_insulator
from repro.core.filters import filtered_subspace
from repro.core.scaling import lanczos_scale


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=6)
    ap.add_argument("--nz", type=int, default=3)
    ap.add_argument("--elo", type=float, default=-1.2)
    ap.add_argument("--ehi", type=float, default=1.2)
    ap.add_argument("--order", type=int, default=2048)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    h, _ = build_topological_insulator(args.nx, args.nx, args.nz)
    n = h.n_rows
    print(f"N = {n} (dense reference feasible at this size)")

    # stage 1: KPM eigencount sizes the subspace
    solver = KPMSolver(h, n_moments=512, n_vectors=32, seed=args.seed)
    count = solver.eigencount(args.elo, args.ehi)
    subspace = int(np.ceil(1.3 * count)) + 4
    print(f"KPM eigencount in [{args.elo}, {args.ehi}]: {count:.1f} "
          f"-> subspace size {subspace}")

    # stage 2: polynomial filter + Rayleigh-Ritz
    scale = lanczos_scale(h, seed=args.seed)
    q = filtered_subspace(
        h, scale, args.elo, args.ehi, subspace, order=args.order,
        seed=args.seed,
    )
    h_small = np.conj(q.T) @ (h.to_dense() @ q)
    ritz = np.linalg.eigvalsh(h_small).real

    lam = np.linalg.eigvalsh(h.to_dense())
    exact = lam[(lam >= args.elo) & (lam <= args.ehi)]
    inside = ritz[(ritz >= args.elo) & (ritz <= args.ehi)]
    print(f"\nexact eigenvalues in window: {exact.size}")
    print(f"Ritz values in window:       {inside.size}")

    print(f"\n{'exact':>12} {'ritz':>12} {'abs.err':>10}")
    matched = 0
    for e in exact:
        j = int(np.argmin(np.abs(inside - e))) if inside.size else -1
        err = abs(inside[j] - e) if j >= 0 else float("inf")
        flag = "" if err < 5e-2 else "  <- unresolved"
        if err < 5e-2:
            matched += 1
        print(f"{e:>12.6f} {inside[j] if j >= 0 else float('nan'):>12.6f} "
              f"{err:>10.2e}{flag}")
    print(f"\nrecovered {matched}/{exact.size} window eigenvalues from a "
          "single filtering round (more rounds / higher order refine the"
          " rest).")


if __name__ == "__main__":
    main()
