#!/usr/bin/env python
"""Graphene quantum-dot superlattice DOS (paper Refs. [20], [21]).

The second workload: nearest-neighbor graphene with an optional dot
superlattice. The clean honeycomb DOS has textbook features the KPM must
resolve — linear vanishing at the Dirac point E = 0 and van Hove
singularities at |E| = t — making this a physics acceptance test beyond
the TI matrix.

Run:  python examples/graphene_dos.py [--cells 48] [--vdot 0.3]
"""

import argparse

import numpy as np

from repro import KPMSolver
from repro.core.reconstruct import integrate_density
from repro.physics.graphene import build_graphene_dot_lattice


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cells", type=int, default=48, help="unit cells per side")
    ap.add_argument("--vdot", type=float, default=0.0, help="dot potential")
    ap.add_argument("--spacing", type=float, default=8.0)
    ap.add_argument("--moments", type=int, default=1024)
    ap.add_argument("--vectors", type=int, default=16)
    ap.add_argument("--seed", type=int, default=2)
    args = ap.parse_args()

    h, model = build_graphene_dot_lattice(
        args.cells, args.cells, v_dot=args.vdot, spacing=args.spacing
    )
    print(f"Graphene: {model.n_sites:,} sites, nnzr = {h.nnzr:.2f}")

    solver = KPMSolver(
        h, n_moments=args.moments, n_vectors=args.vectors, seed=args.seed
    )
    dos = solver.dos()
    rho = dos.rho / model.n_sites
    e = dos.energies

    total = integrate_density(e, dos.rho)
    print(f"DOS integral = {total:,.0f} / N = {model.n_sites:,}")

    # quantitative feature checks
    at_dirac = float(np.interp(0.0, e, rho))
    near_vhove = float(rho[(np.abs(np.abs(e) - 1.0) < 0.05)].max())
    band_edge = float(rho[np.abs(e) > 3.05].max()) if np.any(np.abs(e) > 3.05) else 0.0
    print(f"\n  DOS at the Dirac point (E=0) : {at_dirac:.4f}  (small)")
    print(f"  DOS at the van Hove peaks    : {near_vhove:.4f}  (large)")
    print(f"  DOS outside the band |E|>3t  : {band_edge:.4f}  (~0)")

    width = 64
    bins = np.linspace(-3.2, 3.2, width + 1)
    centers = 0.5 * (bins[1:] + bins[:-1])
    binned = np.interp(centers, e, rho)
    peak = binned.max()
    print(f"\n  DOS sketch over [-3.2t, 3.2t] (peak {peak:.3f}):")
    for level in range(8, 0, -1):
        print("  |" + "".join(
            "#" if r >= peak * level / 8 else " " for r in binned
        ) + "|")
    print("  " + f"{-3.2:+.1f}" + " " * (width - 8) + f"{3.2:+.1f}")
    if args.vdot:
        print(f"\n  (dot superlattice V_dot={args.vdot} breaks "
              "particle-hole symmetry; compare with --vdot 0)")


if __name__ == "__main__":
    main()
