#!/usr/bin/env python
"""Quickstart: density of states of a topological insulator in ~20 lines.

Builds the paper's 3D topological-insulator Hamiltonian (Eq. (1)) on a
small lattice, runs the blocked KPM-DOS solver (optimization stage 2),
and prints a terminal sketch of the resulting density of states.

Run:  python examples/quickstart.py [--nx 16] [--moments 512]
"""

import argparse

import numpy as np

from repro import KPMSolver, build_topological_insulator
from repro.core.reconstruct import integrate_density


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=16, help="lattice extent in x and y")
    ap.add_argument("--nz", type=int, default=8, help="lattice extent in z")
    ap.add_argument("--moments", type=int, default=512, help="Chebyshev moments M")
    ap.add_argument("--vectors", type=int, default=8, help="stochastic vectors R")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    h, model = build_topological_insulator(args.nx, args.nx, args.nz)
    print(f"Hamiltonian: N = {h.n_rows:,} rows, {h.nnz:,} nonzeros "
          f"({h.nnzr:.2f} per row)")

    solver = KPMSolver(
        h, n_moments=args.moments, n_vectors=args.vectors, seed=args.seed
    )
    dos = solver.dos()

    total = integrate_density(dos.energies, dos.rho)
    print(f"DOS integrates to {total:,.1f} (expected N = {h.n_rows:,})")

    # terminal sketch: 48 energy bins, column height ~ DOS
    bins = np.linspace(dos.energies[0], dos.energies[-1], 49)
    centers = 0.5 * (bins[1:] + bins[:-1])
    rho_binned = np.interp(centers, dos.energies, dos.rho)
    peak = rho_binned.max()
    print("\n  E range: "
          f"[{dos.energies[0]:+.2f}, {dos.energies[-1]:+.2f}]   "
          f"peak DOS = {peak:.1f} states / unit energy")
    for level in range(10, 0, -1):
        row = "".join(
            "#" if r >= peak * level / 10 else " " for r in rho_binned
        )
        print(f"  |{row}|")
    print("  +" + "-" * 48 + "+")


if __name__ == "__main__":
    main()
