#!/usr/bin/env python
"""Paper Fig. 2: LDOS map and spectral function of a dot superlattice.

Left panel of the paper's Fig. 2: the local density of states at the
surface (z = 0) and E = 0 resolves the quantum-dot superlattice imposed
on the topological insulator. Right panel: the momentum-resolved
spectral function A(k, E) along k_x shows the dispersive surface states.

Run:  python examples/quantum_dot_superlattice.py [--nx 24 --nz 6]
"""

import argparse

import numpy as np

from repro import KPMSolver, build_topological_insulator
from repro.physics.potentials import dot_superlattice_potential


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=24)
    ap.add_argument("--nz", type=int, default=6)
    ap.add_argument("--moments", type=int, default=256)
    ap.add_argument("--vdot", type=float, default=0.153)
    ap.add_argument("--spacing", type=int, default=12,
                    help="dot period D (paper: 100)")
    ap.add_argument("--nk", type=int, default=9, help="k-points along kx")
    ap.add_argument("--seed", type=int, default=3)
    args = ap.parse_args()

    h0, model = build_topological_insulator(args.nx, args.nx, args.nz)
    lat = model.lattice
    pot = dot_superlattice_potential(
        lat, v_dot=args.vdot, spacing=args.spacing
    )
    h = model.build(pot)
    print(f"TI with dot superlattice: N = {h.n_rows:,}, "
          f"V_dot = {args.vdot}, D = {args.spacing}")

    solver = KPMSolver(h, n_moments=args.moments, n_vectors=16, seed=args.seed)

    # ---- LDOS(z=0, E=0) map over the surface (paper Fig. 2, left) ------
    surf_sites = lat.boundary_sites(2, 0)
    rows = 4 * surf_sites  # orbital 0 of each surface site
    print(f"Computing stochastic LDOS for {rows.size} surface sites ...")
    ldos = solver.ldos(rows)
    at_zero = ldos.at_energy(0.0)
    grid = at_zero.reshape(args.nx, args.nx)  # (y, x)

    # character map of the LDOS: darker = higher
    shades = " .:-=+*#%@"
    lo, hi = np.percentile(grid, [5, 95])
    print(f"\nLDOS(z=0, E=0) map ({args.nx} x {args.nx}); '@' = high:")
    for row in grid:
        idx = np.clip(
            ((row - lo) / max(hi - lo, 1e-30) * (len(shades) - 1)), 0,
            len(shades) - 1,
        ).astype(int)
        print("  " + "".join(shades[i] for i in idx))

    dot_mask = pot[surf_sites] != 0
    print(f"\n  mean LDOS inside dots : {at_zero[dot_mask].mean():.4g}")
    print(f"  mean LDOS outside dots: {at_zero[~dot_mask].mean():.4g}")

    # ---- spectral function A(k, E) along kx (paper Fig. 2, right) ------
    ks = [(kx, 0.0, 0.0) for kx in np.linspace(-np.pi / 6, np.pi / 6, args.nk)]
    print(f"\nComputing A(k, E) for {len(ks)} k-points along kx ...")
    spec = solver.spectral_function(lat, ks)
    band = spec.band_maximum()
    print("      kx/pi      E_max(k)")
    for (kx, _, _), e in zip(ks, band):
        print(f"  {kx / np.pi:+10.4f}  {e:+10.4f}")
    print("\nThe E_max(k) column traces the dispersive band of paper "
          "Fig. 2 (right panel).")


if __name__ == "__main__":
    main()
