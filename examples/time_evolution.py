#!/usr/bin/env python
"""Chebyshev time evolution: wave-packet dynamics on the TI lattice.

The paper's conclusion points at "other blocked sparse linear algebra
algorithms besides KPM"; the nearest neighbor is Chebyshev time
propagation — same two-term recurrence, same augmented/blocked kernels.
This example launches a localized excitation on the topological
insulator and tracks its spreading and survival probability.

Run:  python examples/time_evolution.py [--nx 14 --nz 5]
"""

import argparse

import numpy as np

from repro import build_topological_insulator
from repro.core.evolution import autocorrelation, evolve
from repro.core.scaling import lanczos_scale


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=14)
    ap.add_argument("--nz", type=int, default=5)
    ap.add_argument("--tmax", type=float, default=8.0)
    ap.add_argument("--steps", type=int, default=9)
    args = ap.parse_args()

    h, model = build_topological_insulator(args.nx, args.nx, args.nz)
    lat = model.lattice
    scale = lanczos_scale(h, seed=0)
    print(f"TI lattice {lat.shape}, N = {h.n_rows:,}")

    # localized start: orbital 0 at the surface center
    center = lat.site_index(args.nx // 2, args.nx // 2, 0)
    psi0 = np.zeros(h.n_rows, dtype=complex)
    psi0[4 * center] = 1.0

    times = np.linspace(0.0, args.tmax, args.steps)
    x, y, z = lat.all_coords()
    cx, cy = args.nx // 2, args.nx // 2
    # minimum-image squared distance from the launch site, per orbital row
    dx = np.minimum(np.abs(x - cx), args.nx - np.abs(x - cx))
    dy = np.minimum(np.abs(y - cy), args.nx - np.abs(y - cy))
    site_r2 = (dx**2 + dy**2 + z**2).astype(float)
    row_r2 = np.repeat(site_r2, 4)

    print(f"\n{'t':>6} {'norm':>10} {'spread <r^2>^1/2':>18} {'|C(t)|^2':>10}")
    c_t = autocorrelation(h, scale, psi0, times)
    for t, c in zip(times, c_t):
        psi_t = evolve(h, scale, psi0, float(t))
        norm = np.linalg.norm(psi_t)
        prob = np.abs(psi_t) ** 2
        spread = np.sqrt(float(prob @ row_r2))
        print(f"{t:>6.2f} {norm:>10.6f} {spread:>18.3f} "
              f"{abs(c) ** 2:>10.4f}")

    print("\nUnitarity: the norm column must stay at 1 (it does, to"
          "\nmachine precision — the Chebyshev propagator is exact to the"
          "\nexpansion tolerance). The survival probability |C(t)|^2"
          "\ndecays as the packet spreads ballistically.")


if __name__ == "__main__":
    main()
