"""Mixed-precision kernel sweep: measured bytes/flop vs the analytic model.

The precision tentpole claims two things per storage profile (fp64 /
fp32 / fp16v):

1. **accounting** — the bytes the instrumented kernels charge equal the
   closed-form recharge of :func:`repro.perf.report.expected_counters`
   under the profile's stream widths *exactly* (uint16 indices included:
   the 64k-row bench operator fits the 2^16 column budget);
2. **throughput** — halving the streamed bytes buys wall-clock time on
   the compiled kernels.  The headline acceptance bar: the native SELL
   ``aug_spmmv`` iteration at fp32 runs >= 1.5x faster than fp64.

This bench measures both on the same 64,000-row TI operator as
``bench_kernels_measured.py`` and writes ``results/BENCH_precision.json``.

Honesty note: fp16v minimizes traffic (vector streams quarter); since
the F16C ``_simd`` converters landed the native row converts that into
real wall-clock wins on this host too.  On builds without the
vectorized kernels the per-step decode/encode is software-emulated and
dominates — either way the row records its *measured* wall clock so
nobody mistakes the traffic tier for an assumed speed tier.  On
bandwidth-bound sockets/GPUs the traffic ratio is the speedup ceiling.
"""

import json
import time

import numpy as np
import pytest

from _support import RESULTS_DIR, emit, format_table
from repro.core.moments import compute_eta
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.perf.balance import bmin, precision_widths
from repro.perf.report import expected_counters
from repro.physics import build_topological_insulator
from repro.sparse import SellMatrix
from repro.sparse.backend import get_backend
from repro.util.counters import PerfCounters
from repro.util.precision import get_precision

NX, NZ = 40, 10    # N = 64,000 rows < 2^16 -> uint16-index eligible
R_BLOCK = 32       # the paper's production block width
M_CHECK = 16       # moments for the exact-accounting leg
PRECISIONS = ("fp64", "fp32", "fp16v")


@pytest.fixture(scope="module")
def system():
    h, _ = build_topological_insulator(NX, NX, NZ)
    s = SellMatrix(h, chunk_height=32, sigma=128)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    return h, s, scale


def _step_inputs(prec, n, r, seed=1):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    w = rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    if prec.half_vectors:
        return prec.encode(v), prec.encode(w)
    return (np.ascontiguousarray(v.astype(prec.vector_dtype)),
            np.ascontiguousarray(w.astype(prec.vector_dtype)))


def _time_step(bk, A, scale, r, precision, reps=5):
    """Best-of-reps seconds for one blocked iteration + charged bytes."""
    prec = get_precision(precision)
    plan = bk.plan(A, r, precision=prec)
    v, w = _step_inputs(prec, A.n_rows, r)
    counters = PerfCounters()
    bk.aug_spmmv_step(A, v, w, scale.a, scale.b, plan=plan,
                      counters=counters)  # warm-up + byte charge
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        bk.aug_spmmv_step(A, v, w, scale.a, scale.b, plan=plan)
        best = min(best, time.perf_counter() - t0)
    return best, counters.bytes_total, counters.flops


def test_precision_sweep_json(benchmark, system):
    h, s, scale = system
    backends = {"numpy": get_backend("numpy")}
    native = get_backend("native")
    native_ok = native.available()
    if native_ok:
        backends["native"] = native

    block = make_block_vector(s.n_rows, R_BLOCK, seed=2)
    nnzr = h.nnz / h.n_rows
    series = []
    for bk_name, bk in backends.items():
        for precision in PRECISIONS:
            prec = get_precision(precision)
            # -- throughput: one fused SELL iteration ------------------
            secs, step_bytes, step_flops = _time_step(
                bk, s, scale, R_BLOCK, precision)
            # -- accounting: full eta run == closed-form recharge ------
            counters = PerfCounters()
            compute_eta(s, scale, M_CHECK, block, "aug_spmmv", counters,
                        backend=bk, precision=precision)
            exp = expected_counters(s, M_CHECK, R_BLOCK, "aug_spmmv",
                                    precision=precision)
            exact = (counters.bytes_loaded, counters.bytes_stored,
                     counters.flops) == (exp.bytes_loaded,
                                         exp.bytes_stored, exp.flops)
            assert exact, (
                f"{bk_name}/{precision}: measured {counters.summary()} "
                f"!= analytic {exp.summary()}"
            )
            s_d, s_v, s_i = precision_widths(prec, n_cols=s.n_cols)
            series.append(
                {
                    "backend": bk_name,
                    "precision": precision,
                    "format": "sell",
                    "stage": "aug_spmmv",
                    "r": R_BLOCK,
                    "seconds": secs,
                    "ms_per_vector": secs / R_BLOCK * 1e3,
                    "step_bytes_min": step_bytes,
                    "gbps": step_bytes / secs / 1e9,
                    "measured_bytes_per_flop": step_bytes / step_flops,
                    "model_bytes_per_flop": bmin(
                        R_BLOCK, nnzr, s_d=s_d, s_i=s_i, s_v=s_v),
                    "eta_bytes_measured": counters.bytes_total,
                    "eta_bytes_analytic": exp.bytes_total,
                    "exact_accounting": exact,
                    "index_bytes": s_i,
                }
            )

    def lookup(backend, precision):
        for row in series:
            if (row["backend"], row["precision"]) == (backend, precision):
                return row
        raise KeyError((backend, precision))

    for row in series:
        row["speedup_vs_fp64"] = (
            lookup(row["backend"], "fp64")["seconds"] / row["seconds"]
        )
        row["traffic_vs_fp64"] = (
            row["step_bytes_min"]
            / lookup(row["backend"], "fp64")["step_bytes_min"]
        )

    payload = {
        "bench": "precision",
        "n_rows": h.n_rows,
        "nnz": h.nnz,
        "r_block": R_BLOCK,
        "native_available": native_ok,
        "series": series,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_precision.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [
            r["backend"], r["precision"], r["seconds"] * 1e3,
            r["gbps"], r["traffic_vs_fp64"], r["speedup_vs_fp64"],
            r["measured_bytes_per_flop"], r["model_bytes_per_flop"],
        ]
        for r in series
    ]
    emit(
        "precision",
        format_table(
            ["backend", "prec", "ms/call", "GB/s (min)", "bytes vs fp64",
             "speedup", "B/F meas", "B/F model"],
            rows,
        )
        + "\n(native SELL aug_spmmv, R = 32, N = 64,000 rows; uint16"
        "\n indices under the narrow profiles. Byte accounting is exact"
        "\n vs expected_counters for every row. fp16v minimizes traffic"
        "\n and, with the F16C simd converters, wins wall clock on the"
        "\n native rows too — see the module docstring.)",
    )

    # every profile's measured balance tracks the Eq. (5) model; the
    # kernels charge Table-I minima, so this is exact up to the non-spmmv
    # part of the iteration (dots, swaps) folded into the measured ratio
    for row in series:
        assert row["exact_accounting"]
        assert row["measured_bytes_per_flop"] == pytest.approx(
            row["model_bytes_per_flop"], rel=0.05
        )

    # the headline acceptance bar: compiled fp32 halves both the streamed
    # bytes and the arithmetic width, and must buy >= 1.5x wall clock
    if native_ok:
        ratio = lookup("native", "fp32")["speedup_vs_fp64"]
        assert ratio >= 1.5, (
            f"native SELL aug_spmmv fp32 speedup {ratio:.2f}x < 1.5x"
        )
        assert lookup("native", "fp32")["traffic_vs_fp64"] == pytest.approx(
            0.5, rel=0.01
        )
        assert lookup("native", "fp16v")["traffic_vs_fp64"] < 0.5
    benchmark(lambda: None)
