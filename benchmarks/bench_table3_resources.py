"""Paper Table III: resources to solve the largest system (R=32, M=2000).

Three solver variants on the 6400 x 6400 x 40 system (6.55e9 matrix
rows):

* ``aug_spmv()``   — throughput mode (R independent width-1 runs),
  at the paper's 288 nodes,
* ``aug_spmmv()*`` — blocked with a global reduction every iteration,
  at 1024 nodes,
* ``aug_spmmv()``  — blocked, one reduction at the end, at 1024 nodes.

Paper values: 14.9 / 107 / 116 Tflop/s and 164 / 81 / 75 node-hours.
Headline claim: throughput mode is "more than a factor of two more
expensive"; avoiding per-iteration reductions buys ~8%.
"""

import pytest

from _support import emit, format_table
from repro.dist.scaling_model import ClusterModel

LARGEST = (6400, 6400, 40)
PAPER = {
    "aug_spmv": (14.9, 288, 164),
    "aug_spmmv*": (107.0, 1024, 81),
    "aug_spmmv": (116.0, 1024, 75),
}


def test_table3(benchmark):
    model = ClusterModel(r=32)

    def build():
        rows = []
        for variant, (p_tf, nodes, p_nh) in PAPER.items():
            tf = model.solve_tflops(LARGEST, nodes, 2000, variant=variant)
            nh = model.node_hours(LARGEST, nodes, 2000, variant=variant)
            rows.append([variant, nodes, tf, p_tf, nh, p_nh])
        return rows

    rows = benchmark(build)
    text = format_table(
        ["version", "nodes", "Tflop/s (model)", "Tflop/s (paper)",
         "node-h (model)", "node-h (paper)"],
        rows,
    )
    by = {r[0]: r for r in rows}
    ratio = by["aug_spmv"][4] / by["aug_spmmv"][4]
    overhead = by["aug_spmmv*"][4] / by["aug_spmmv"][4] - 1
    text += (
        f"\n\nthroughput / blocked node-hours: {ratio:.2f}x "
        f"(paper: 164/75 = 2.19x)"
        f"\nper-iteration reductions overhead: {overhead:.1%} (paper: ~8%)"
    )
    emit("table3_resources", text)

    assert ratio > 1.9
    assert 0.02 <= overhead <= 0.15
    for variant, (p_tf, _, p_nh) in PAPER.items():
        assert by[variant][2] == pytest.approx(p_tf, rel=0.25)
        assert by[variant][4] == pytest.approx(p_nh, rel=0.25)
