"""Measured (not modelled) kernel benchmarks on the host CPU.

The paper's optimizations reduce data traffic; since the NumPy kernels
pay for memory traffic exactly like hand-written C, the stage-1 and
stage-2 speedups are directly measurable here. This bench times one
inner KPM iteration per stage on a TI matrix and reports the achieved
per-vector throughput — the in-repo analogue of paper Fig. 11's bars.
"""

import json
import time

import numpy as np
import pytest

from _support import RESULTS_DIR, emit, format_table
from repro.core.scaling import SpectralScale
from repro.physics import build_topological_insulator
from repro.sparse import SellMatrix
from repro.sparse.backend import get_backend
from repro.sparse.fused import aug_spmmv_step, aug_spmv_step, naive_kpm_step
from repro.util.constants import DTYPE
from repro.util.counters import PerfCounters

NX, NZ = 40, 10  # N = 64,000 rows — larger than any host cache


@pytest.fixture(scope="module")
def system():
    h, _ = build_topological_insulator(NX, NX, NZ)
    s = SellMatrix(h, chunk_height=32, sigma=128)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    return h, s, scale


def _vectors(n, r, seed=0):
    rng = np.random.default_rng(seed)
    v = np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    ).astype(DTYPE)
    w = np.ascontiguousarray(
        rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
    ).astype(DTYPE)
    return v, w


def test_naive_step(benchmark, system):
    h, _, scale = system
    v, w = _vectors(h.n_rows, 1)
    v, w = v[:, 0].copy(), w[:, 0].copy()
    scratch = np.empty(h.n_rows, dtype=DTYPE)
    benchmark(naive_kpm_step, h, v, w, scale.a, scale.b, scratch)


def test_aug_spmv_step(benchmark, system):
    h, _, scale = system
    v, w = _vectors(h.n_rows, 1)
    v, w = v[:, 0].copy(), w[:, 0].copy()
    scratch = np.empty(h.n_rows, dtype=DTYPE)
    benchmark(aug_spmv_step, h, v, w, scale.a, scale.b, scratch)


@pytest.mark.parametrize("r", [8, 32])
def test_aug_spmmv_step(benchmark, system, r):
    h, _, scale = system
    v, w = _vectors(h.n_rows, r)
    scratch = np.empty((h.n_rows, r), dtype=DTYPE)
    benchmark(aug_spmmv_step, h, v, w, scale.a, scale.b, scratch)


@pytest.mark.parametrize("r", [32])
def test_aug_spmmv_sell(benchmark, system, r):
    _, s, scale = system
    v, w = _vectors(s.n_rows, r)
    scratch = np.empty((s.n_rows, r), dtype=DTYPE)
    benchmark(aug_spmmv_step, s, v, w, scale.a, scale.b, scratch)


def test_stage_speedups_summary(benchmark, system):
    """One summary row per stage: per-vector time and measured speedup.

    Asserts the paper's ordering: stage 1 beats naive, and the blocked
    stage beats R separate stage-1 iterations per vector.
    """
    h, _, scale = system
    n = h.n_rows

    def time_step(fn, r, reps=3):
        best = float("inf")
        for _ in range(reps):
            if r == 1:
                v, w = _vectors(n, 1, seed=1)
                v, w = v[:, 0].copy(), w[:, 0].copy()
                scratch = np.empty(n, dtype=DTYPE)
            else:
                v, w = _vectors(n, r, seed=1)
                scratch = np.empty((n, r), dtype=DTYPE)
            t0 = time.perf_counter()
            fn(h, v, w, scale.a, scale.b, scratch)
            best = min(best, time.perf_counter() - t0)
        return best

    t_naive = time_step(naive_kpm_step, 1)
    t_s1 = time_step(aug_spmv_step, 1)
    t_s2_32 = time_step(aug_spmmv_step, 32)

    def traffic(fn, r):
        c = PerfCounters()
        if r == 1:
            v, w = _vectors(n, 1, seed=2)
            fn(h, v[:, 0].copy(), w[:, 0].copy(), scale.a, scale.b,
               counters=c)
        else:
            v, w = _vectors(n, r, seed=2)
            fn(h, v, w, scale.a, scale.b, counters=c)
        return c.bytes_total / r / 1e6  # MB per vector

    b_naive = traffic(naive_kpm_step, 1)
    b_s1 = traffic(aug_spmv_step, 1)
    b_s2 = traffic(aug_spmmv_step, 32)
    rows = [
        ["naive (Fig. 3)", 1, t_naive * 1e3, t_naive * 1e3, b_naive],
        ["aug_spmv (Fig. 4)", 1, t_s1 * 1e3, t_s1 * 1e3, b_s1],
        ["aug_spmmv (Fig. 5)", 32, t_s2_32 * 1e3, t_s2_32 / 32 * 1e3, b_s2],
    ]
    emit(
        "kernels_measured",
        format_table(
            ["kernel", "R", "ms/call", "ms/vector", "MB/vector (min)"],
            rows,
        )
        + f"\n(N = {n:,} rows, measured on this host."
        "\n Traffic per vector falls naive -> stage1 -> stage2 exactly as"
        "\n paper Eq. (4); wall-clock follows it only on bandwidth-starved"
        "\n machines — this host is a single core with a ~260 MB LLC, i.e."
        "\n compute-bound, so per-vector times merely stay ~flat. See"
        "\n EXPERIMENTS.md.)",
    )
    # fusion never loses, and the traffic hierarchy is strict
    assert t_s1 <= t_naive * 1.10
    assert b_s1 < b_naive and b_s2 < b_s1
    benchmark(lambda: None)


# -- backend comparison (numpy vs compiled native kernels) --------------

R_BLOCK = 32  # the paper's production block width


def _time_backend_step(bk, A, scale, stage, r, reps=5, precision="fp64"):
    """Best-of-reps seconds for one inner iteration, plus min-traffic bytes."""
    from repro.util.precision import get_precision

    prec = get_precision(precision)
    n = A.n_rows
    plan = bk.plan(A, r, precision=prec)
    step = {
        "naive": bk.naive_step,
        "aug_spmv": bk.aug_spmv_step,
        "aug_spmmv": bk.aug_spmmv_step,
    }[stage]
    if r == 1:
        v, w = _vectors(n, 1, seed=1)
        v, w = v[:, 0].copy(), w[:, 0].copy()
    else:
        v, w = _vectors(n, r, seed=1)
    if prec.half_vectors:
        v, w = prec.encode(v), prec.encode(w)
    elif prec.vector_dtype != v.dtype:
        v = np.ascontiguousarray(v.astype(prec.vector_dtype))
        w = np.ascontiguousarray(w.astype(prec.vector_dtype))
    counters = PerfCounters()
    step(A, v, w, scale.a, scale.b, plan=plan, counters=counters)  # warm-up
    nbytes = counters.bytes_total
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        step(A, v, w, scale.a, scale.b, plan=plan)
        best = min(best, time.perf_counter() - t0)
    return best, nbytes


def test_backend_speedups_json(benchmark, system):
    """Per-stage, per-format, per-backend wall clock — BENCH_kernels.json.

    Times every (stage, format, backend) combination through the kernel
    backend registry, converts the Table-I minimum traffic into achieved
    GB/s, and records the native-over-numpy speedups. When the native
    kernels compiled, the fused blocked SELL iteration must beat the
    NumPy path by >= 3x — the compiled single-pass kernel's win over
    NumPy's multi-pass stages on this bandwidth-priced workload.
    """
    h, s, scale = system
    backends = {"numpy": get_backend("numpy")}
    native = get_backend("native")
    native_ok = native.available()
    if native_ok:
        backends["native"] = native

    # fp64 covers every stage; the reduced storage profiles ride on the
    # headline blocked stage (where the bytes dominate and the fp32
    # acceptance bar lives — see bench_precision.py for the full sweep)
    stages = [
        ("naive", 1, "fp64"),
        ("aug_spmv", 1, "fp64"),
        ("aug_spmmv", R_BLOCK, "fp64"),
        ("aug_spmmv", R_BLOCK, "fp32"),
        ("aug_spmmv", R_BLOCK, "fp16v"),
    ]
    series = []
    for fmt, A in (("csr", h), ("sell", s)):
        for stage, r, precision in stages:
            for bk_name, bk in backends.items():
                secs, nbytes = _time_backend_step(
                    bk, A, scale, stage, r, precision=precision)
                series.append(
                    {
                        "stage": stage,
                        "format": fmt,
                        "backend": bk_name,
                        "r": r,
                        "precision": precision,
                        "seconds": secs,
                        "ms_per_vector": secs / r * 1e3,
                        "bytes_min": nbytes,
                        "gbps": nbytes / secs / 1e9,
                    }
                )

    def lookup(stage, fmt, backend, precision="fp64"):
        for row in series:
            if (row["stage"], row["format"], row["backend"],
                    row["precision"]) == (stage, fmt, backend, precision):
                return row
        raise KeyError((stage, fmt, backend, precision))

    for row in series:
        base = lookup(row["stage"], row["format"], "numpy",
                      row["precision"])
        row["speedup_vs_numpy"] = base["seconds"] / row["seconds"]

    payload = {
        "n_rows": h.n_rows,
        "nnz": h.nnz,
        "r_block": R_BLOCK,
        "native_available": native_ok,
        "series": series,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [
            f"{r['stage']}/{r['format']}", r["backend"], r["r"],
            r["precision"], r["seconds"] * 1e3, r["gbps"],
            r["speedup_vs_numpy"],
        ]
        for r in series
    ]
    emit(
        "kernels_backends",
        format_table(
            ["kernel", "backend", "R", "prec", "ms/call", "GB/s (min)",
             "speedup"],
            rows,
        )
        + "\n(GB/s uses the Table-I minimum-traffic byte count under the"
        "\n row's storage profile; the native column is the compiled"
        "\n single-pass C kernel. fp32 halves the streamed bytes and the"
        "\n work; fp16v quarters the vector bytes and uses the F16C"
        "\n converters when the host compiles them, a software float16"
        "\n decode otherwise.)",
    )

    if native_ok:
        # floor calibrated to the determinism-pinned build: the scalar
        # family compiles with -ffp-contract=off -fno-tree-vectorize so
        # the explicit lane-blocked _simd kernels can replay its exact
        # reduction DAG (bitwise-equal moments, see tests/sparse/
        # test_simd_kernels.py).  That pinning trades a slice of the old
        # free-contraction autovec throughput (~3.4x vs numpy) for
        # reproducibility; the vectorized build lands at ~2.6x on the
        # reference host, so gate at 2x with noise margin.
        ratio = lookup("aug_spmmv", "sell", "native")["speedup_vs_numpy"]
        assert ratio >= 2.0, (
            f"native SELL aug_spmmv R={R_BLOCK} speedup {ratio:.2f}x < 2x"
        )
    benchmark(lambda: None)
