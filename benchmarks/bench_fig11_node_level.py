"""Paper Fig. 11: node-level performance per optimization stage.

Regenerates the nine bars of Fig. 11 — {SNB, K20X, SNB+K20X} for each
optimization stage — plus the heterogeneous parallel efficiency printed
above the bars, from the calibrated device models. Verifies the
Section VI-B headline claims:

* more than 10x from the naive CPU-only code to the fully optimized
  heterogeneous version,
* ~2.3x on the GPU from algorithmic optimization alone,
* ~36% more from adding the CPU to the GPU,
* 85-90% heterogeneous parallel efficiency.
"""

import pytest

from _support import emit, format_table
from repro.perf.arch import PIZ_DAINT_NODE
from repro.perf.roofline import node_performance

STAGES = [("naive", "Naive"), ("aug_spmv", "Opt. stage 1"),
          ("aug_spmmv", "Opt. stage 2")]


def test_fig11(benchmark):
    def build():
        return {
            stage: node_performance(PIZ_DAINT_NODE, stage, r=32)
            for stage, _ in STAGES
        }

    perf = benchmark(build)
    rows = [
        [label, perf[stage]["cpu"], perf[stage]["gpu"],
         perf[stage]["heterogeneous"],
         f"{perf[stage]['parallel_efficiency']:.0%}"]
        for stage, label in STAGES
    ]
    text = format_table(
        ["stage", "SNB (Gflop/s)", "K20X (Gflop/s)",
         "SNB+K20X (Gflop/s)", "par.eff."],
        rows,
    )
    s0, s2 = perf["naive"], perf["aug_spmmv"]
    text += (
        f"\n\nnaive CPU -> optimized heterogeneous: "
        f"{s2['heterogeneous'] / s0['cpu']:.1f}x   (paper: >10x)"
        f"\nnaive GPU -> optimized GPU:          "
        f"{s2['gpu'] / s0['gpu']:.2f}x   (paper: 2.3x)"
        f"\noptimized GPU -> + CPU:              "
        f"+{(s2['heterogeneous'] / s2['gpu'] - 1) * 100:.0f}%   (paper: +36%)"
    )
    emit("fig11_node_level", text)

    assert s2["heterogeneous"] / s0["cpu"] > 10.0
    assert 1.9 <= s2["gpu"] / s0["gpu"] <= 2.7
    assert 1.2 <= s2["heterogeneous"] / s2["gpu"] <= 1.5
    for stage, _ in STAGES:
        assert 0.80 <= perf[stage]["parallel_efficiency"] <= 0.92
