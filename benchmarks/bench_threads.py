"""Intra-rank thread scaling of the native blocked kernels.

The threaded (``_mt``) kernels partition rows into a fixed block grid,
keep one Kahan eta partial per block, and combine the partials in block
order — so the fp64 moments are *bitwise identical* at every thread
count.  This bench records both halves of that contract on the 64,000-row
TI operator:

1. **speed** — best-of-reps wall clock for one blocked ``aug_spmmv``
   iteration at threads in {1, 2, 4} for CSR and SELL-C-sigma, with the
   parallel efficiency relative to the single-thread run;
2. **determinism** — a full eta run per thread count, asserted bitwise
   equal to the threads=1 reference (and its traffic equal to the
   Eq. 5-7 analytic charge: threading never changes the bytes story).

Writes ``results/BENCH_threads.json``.

Honesty note: on a single-core host the threaded rows can only tie or
lose to threads=1 — OpenMP teams time-slice one core and the recorded
"speedups" measure scheduling overhead, not scaling.  The payload
records the affinity-visible core count and a ``single_core_caveat``
flag so nobody reads overhead as a scaling result; the bitwise half of
the contract is meaningful (and asserted) regardless of core count.
"""

import json
import time

import numpy as np
import pytest

from _support import RESULTS_DIR, emit, format_table, warn_if_single_core
from repro.core.moments import compute_eta
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.perf.report import expected_counters
from repro.physics import build_topological_insulator
from repro.sparse import SellMatrix
from repro.sparse.backend import get_backend
from repro.util.counters import PerfCounters

NX, NZ = 40, 10       # N = 64,000 rows, same operator as the kernel bench
R_BLOCK = 8           # wide enough to stress the blocked eta reduction
M_CHECK = 16
THREAD_COUNTS = (1, 2, 4)

pytestmark = pytest.mark.skipif(
    not get_backend("native").available(),
    reason="no C compiler for the native threaded kernels",
)


@pytest.fixture(scope="module")
def system():
    h, _ = build_topological_insulator(NX, NX, NZ)
    s = SellMatrix(h, chunk_height=32, sigma=128)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    return h, s, scale


def _time_step(bk, A, scale, r, threads, reps=5):
    """Best-of-reps seconds for one blocked iteration at a thread count."""
    rng = np.random.default_rng(1)
    v = np.ascontiguousarray(
        rng.normal(size=(A.n_rows, r)) + 1j * rng.normal(size=(A.n_rows, r))
    )
    w = np.ascontiguousarray(
        rng.normal(size=(A.n_rows, r)) + 1j * rng.normal(size=(A.n_rows, r))
    )
    plan = bk.plan(A, r, threads=threads)
    bk.aug_spmmv_step(A, v, w, scale.a, scale.b, plan=plan)  # warm-up
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        bk.aug_spmmv_step(A, v, w, scale.a, scale.b, plan=plan)
        best = min(best, time.perf_counter() - t0)
    return best


def test_thread_scaling_json(benchmark, system):
    h, s, scale = system
    bk = get_backend("native")
    cores = warn_if_single_core("bench_threads")
    block = make_block_vector(h.n_rows, R_BLOCK, seed=2)
    exp = expected_counters(h, M_CHECK, R_BLOCK, "aug_spmmv")

    series = []
    reference_eta = {}
    for fmt, A in (("csr", h), ("sell", s)):
        for t in THREAD_COUNTS:
            secs = _time_step(bk, A, scale, R_BLOCK, t)
            counters = PerfCounters()
            eta = compute_eta(A, scale, M_CHECK, block, "aug_spmmv",
                              counters, backend=bk, threads=t)
            ref = reference_eta.setdefault(fmt, eta)
            bitwise = bool(np.array_equal(ref, eta))
            assert bitwise, (
                f"{fmt}: fp64 moments differ between threads=1 and "
                f"threads={t} (bitwise contract broken)"
            )
            exact = (counters.bytes_loaded, counters.bytes_stored,
                     counters.flops) == (exp.bytes_loaded,
                                         exp.bytes_stored, exp.flops)
            assert exact, (
                f"{fmt}/threads={t}: measured {counters.summary()} != "
                f"analytic {exp.summary()}"
            )
            base = next(r["seconds"] for r in series
                        if r["format"] == fmt and r["threads"] == 1) \
                if t != 1 else secs
            series.append(
                {
                    "format": fmt,
                    "threads": t,
                    "seconds": secs,
                    "ms_per_vector": secs / R_BLOCK * 1e3,
                    "speedup_vs_t1": base / secs,
                    "efficiency": base / secs / t,
                    "eta_bitwise_vs_t1": bitwise,
                    "eta_bytes_measured": counters.bytes_total,
                    "eta_bytes_analytic": exp.bytes_total,
                    "exact_accounting": exact,
                }
            )

    payload = {
        "bench": "threads",
        "n_rows": h.n_rows,
        "nnz": h.nnz,
        "r_block": R_BLOCK,
        "n_moments": M_CHECK,
        "thread_counts": list(THREAD_COUNTS),
        "cpu_count": cores,
        "single_core_caveat": cores == 1,
        "series": series,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_threads.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [r["format"], r["threads"], r["seconds"] * 1e3,
         r["speedup_vs_t1"], r["efficiency"],
         "yes" if r["eta_bitwise_vs_t1"] else "NO"]
        for r in series
    ]
    caveat = (
        "\n(single-core host: the speedup column measures OpenMP"
        "\n overhead, not scaling — see the module docstring)"
        if cores == 1 else ""
    )
    emit(
        "threads",
        format_table(
            ["fmt", "threads", "ms/call", "speedup", "efficiency",
             "bitwise"],
            rows,
        )
        + f"\n(native aug_spmmv, R = {R_BLOCK}, N = {h.n_rows:,} rows,"
        f"\n {cores} core(s) visible. Byte accounting exact vs"
        "\n expected_counters and fp64 moments bitwise equal to the"
        "\n threads=1 run for every row.)" + caveat,
    )
