"""Ablation: damping kernel choice (Jackson / Lorentz / Dirichlet).

Quantifies why KPM-DOS uses the Jackson kernel: without damping
(Dirichlet) the truncated Chebyshev series Gibbs-oscillates and the DOS
goes negative; Jackson guarantees positivity at an energy resolution
~pi/M; Lorentz trades some positivity for causal broadening.
"""

import numpy as np
import pytest

from _support import emit, format_table
from repro.core.reconstruct import integrate_density, reconstruct_dos
from repro.core.solver import KPMSolver
from repro.physics import build_topological_insulator

KERNELS = ("jackson", "lorentz", "dirichlet")


def test_damping_ablation(benchmark):
    h, _ = build_topological_insulator(10, 10, 4)
    lam = np.linalg.eigvalsh(h.to_dense())

    solver = KPMSolver(h, n_moments=256, n_vectors=32, seed=5)
    mu = solver.moments()

    def build():
        rows = []
        for kernel in KERNELS:
            e, rho = reconstruct_dos(mu, solver.scale, n_points=1024,
                                     kernel=kernel)
            total = integrate_density(e, rho)
            neg = float(-rho.min()) / float(rho.max())
            # eigencount accuracy in a fixed window
            est = integrate_density(e, rho, -1.0, 1.0)
            exact = int(((lam >= -1) & (lam <= 1)).sum())
            rows.append([kernel, total, neg, est, exact])
        return rows

    rows = benchmark(build)
    text = format_table(
        ["kernel", "DOS integral", "max negative/peak",
         "count [-1,1]", "exact count"],
        rows,
    )
    text += (
        "\n\nJackson: strictly positive, accurate counting (the paper's"
        "\nchoice). Dirichlet: Gibbs oscillations drive the DOS negative."
    )
    emit("ablation_damping", text)

    by = {r[0]: r for r in rows}
    n = h.n_rows
    for kernel in KERNELS:
        assert by[kernel][1] == pytest.approx(n, rel=0.05)
    assert by["jackson"][2] < 1e-6  # non-negative
    assert by["dirichlet"][2] > 1e-3  # visible Gibbs undershoot
    assert by["jackson"][3] == pytest.approx(by["jackson"][4], abs=0.08 * n)
