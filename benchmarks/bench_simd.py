"""Speed and determinism of the vectorized (AVX2/FMA + F16C) kernels.

The ``_simd`` kernel family replays the scalar kernels' exact reduction
DAG in 8-lane blocks, so the fp64 moments are *bitwise identical* across
``simd='on'`` and ``simd='off'`` — the vectorization is pure speed.
This bench records both halves of that contract on the 64,000-row TI
operator:

1. **speed** — best-of-reps wall clock for one blocked iteration with
   the scalar and the vectorized build, per stage x format x precision,
   with the simd speedup (the number the ISSUE gates: SELL R=32
   ``aug_spmmv`` must be >= 1.3x scalar, and fp16v wall clock must not
   lose to fp64 under simd);
2. **determinism** — a full fp64 eta run per setting, asserted bitwise
   equal across on/off, with traffic exactly equal to the Eq. 5-7
   analytic charge (vectorization never changes the bytes story).

Writes ``results/BENCH_simd.json``; ``tools/check_perf_regression.py``
gates the recorded speedups so a later change cannot silently lose the
vectorized kernels' advantage.

Honesty note: the speedup column is scalar-vs-vector on the *same*
host, so host speed cancels and the number is meaningful even on a
loaded single-core CI runner.  On a host whose compiler cannot target
AVX2 the "on" rows fall back to the scalar kernels and every speedup
records ~1.0x; the payload's ``simd_compiled_mask`` says which case you
are reading.
"""

import json
import time

import numpy as np
import pytest

from _support import RESULTS_DIR, emit, format_table, host_cores
from repro.core.moments import compute_eta
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.perf.report import expected_counters
from repro.physics import build_topological_insulator
from repro.sparse import SellMatrix
from repro.sparse.backend import get_backend
from repro.sparse.backend.native import simd_compiled_mask
from repro.util.counters import PerfCounters
from repro.util.precision import get_precision

NX, NZ = 40, 10       # N = 64,000 rows, same operator as the kernel bench
M_CHECK = 16
#: (stage, r, precision) rows; r=32 sell/fp64 and fp16v are the gated ones
CASES = [
    ("naive", 1, "fp64"),
    ("aug_spmv", 1, "fp64"),
    ("aug_spmmv", 8, "fp64"),
    ("aug_spmmv", 32, "fp64"),
    ("aug_spmmv", 32, "fp32"),
    ("aug_spmmv", 32, "fp16v"),
]

pytestmark = pytest.mark.skipif(
    not get_backend("native").available(),
    reason="no C compiler for the native SIMD kernels",
)


@pytest.fixture(scope="module")
def system():
    h, _ = build_topological_insulator(NX, NX, NZ)
    s = SellMatrix(h, chunk_height=32, sigma=128)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    return h, s, scale


def _time_step(bk, A, scale, stage, r, precision, simd, reps=5):
    """Best-of-reps seconds + charged bytes for one kernel iteration."""
    prec = get_precision(precision)
    rng = np.random.default_rng(1)
    shape = (A.n_rows, r) if r > 1 else (A.n_rows,)
    v = np.ascontiguousarray(rng.normal(size=shape) +
                             1j * rng.normal(size=shape))
    w = np.ascontiguousarray(rng.normal(size=shape) +
                             1j * rng.normal(size=shape))
    if prec.half_vectors:
        v, w = prec.encode(v), prec.encode(w)
    elif prec.vector_dtype != v.dtype:
        v = np.ascontiguousarray(v.astype(prec.vector_dtype))
        w = np.ascontiguousarray(w.astype(prec.vector_dtype))
    plan = bk.plan(A, r, precision=prec, simd=simd)
    step = {
        "naive": bk.naive_step,
        "aug_spmv": bk.aug_spmv_step,
        "aug_spmmv": bk.aug_spmmv_step,
    }[stage]
    counters = PerfCounters()
    step(A, v, w, scale.a, scale.b, plan=plan, counters=counters)  # warm-up
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        step(A, v, w, scale.a, scale.b, plan=plan)
        best = min(best, time.perf_counter() - t0)
    return best, counters.bytes_total


def test_simd_speedup_json(benchmark, system):
    h, s, scale = system
    bk = get_backend("native")
    # no warn_if_single_core here: scalar-vs-vector on one core is a
    # fair fight — SIMD speedups do not need more cores to materialize
    cores = host_cores()
    mask = simd_compiled_mask()

    series = []
    for fmt, A in (("csr", h), ("sell", s)):
        for stage, r, precision in CASES:
            t_off, nbytes = _time_step(bk, A, scale, stage, r, precision,
                                       "off")
            t_on, _ = _time_step(bk, A, scale, stage, r, precision, "on")

            row = {
                "stage": stage,
                "format": fmt,
                "r": r,
                "precision": precision,
                "seconds_scalar": t_off,
                "seconds_simd": t_on,
                "simd_speedup": t_off / t_on,
                "gbps_scalar": nbytes / t_off / 1e9,
                "gbps_simd": nbytes / t_on / 1e9,
            }
            if precision == "fp64":
                block = make_block_vector(h.n_rows, r, seed=2)
                exp = expected_counters(h, M_CHECK, r, stage)
                etas, exacts = [], []
                for simd in ("off", "on"):
                    c = PerfCounters()
                    etas.append(compute_eta(A, scale, M_CHECK, block, stage,
                                            c, backend=bk, simd=simd))
                    exacts.append(
                        (c.bytes_loaded, c.bytes_stored, c.flops)
                        == (exp.bytes_loaded, exp.bytes_stored, exp.flops))
                bitwise = bool(np.array_equal(*etas))
                assert bitwise, (
                    f"{stage}/{fmt}/r={r}: fp64 moments differ between "
                    "simd=off and simd=on (bitwise contract broken)"
                )
                assert all(exacts), (
                    f"{stage}/{fmt}/r={r}: byte accounting not exact "
                    "under simd"
                )
                row["eta_bitwise_on_off"] = bitwise
                row["exact_accounting"] = True
            series.append(row)

    # the half-storage wall-clock claim: fp16v must not lose to fp64
    for fmt in ("csr", "sell"):
        f64 = next(r for r in series if r["format"] == fmt
                   and r["r"] == 32 and r["precision"] == "fp64")
        f16 = next(r for r in series if r["format"] == fmt
                   and r["r"] == 32 and r["precision"] == "fp16v")
        f16["fp16v_vs_fp64_wall"] = (f64["seconds_simd"]
                                     / f16["seconds_simd"])

    payload = {
        "bench": "simd",
        "n_rows": h.n_rows,
        "nnz": h.nnz,
        "n_moments": M_CHECK,
        "cpu_count": cores,
        "simd_compiled_mask": mask,
        "series": series,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_simd.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        [r["stage"], r["format"], r["r"], r["precision"],
         r["seconds_scalar"] * 1e3, r["seconds_simd"] * 1e3,
         r["simd_speedup"],
         "yes" if r.get("eta_bitwise_on_off") else "-"]
        for r in series
    ]
    note = (
        "\n(simd kernels not compiled on this host: speedups record the"
        "\n scalar fallback, ~1.0x by construction)"
        if not mask & 1 else ""
    )
    emit(
        "simd",
        format_table(
            ["stage", "fmt", "R", "prec", "scalar ms", "simd ms",
             "speedup", "bitwise"],
            rows,
        )
        + f"\n(native kernels, N = {h.n_rows:,} rows, compiled mask ="
        f" {mask}. fp64 moments bitwise equal across simd on/off and"
        "\n byte accounting exact vs expected_counters for every fp64"
        " row.)" + note,
    )
