"""Ablation: SELL-C-sigma chunk height C and sorting scope sigma.

The unified format of the paper's Ref. [13]: larger C suits wider SIMD
but inflates zero fill-in when row lengths vary inside a chunk; sorting
(sigma > C) restores the padding efficiency beta. The TI matrix has
nearly uniform rows (11-13 nnz), so beta stays high; a synthetic
power-law matrix shows the full effect.

Kernel timings use the pure-NumPy SELL path (the layout-faithful
implementation) — the fast compiled backend is format-agnostic.
"""

import numpy as np
import pytest

from _support import emit, format_table
from repro.physics import build_topological_insulator
from repro.sparse.csr import CSRMatrix
from repro.sparse.sell import SellMatrix
from repro.sparse.spmv import set_fast_backend, spmmv


def powerlaw_matrix(n=4096, seed=0):
    """Rows with power-law lengths — worst case for chunk padding."""
    rng = np.random.default_rng(seed)
    lengths = np.minimum((rng.pareto(1.5, size=n) + 1).astype(int) * 2, n // 4)
    rows = np.repeat(np.arange(n), lengths)
    cols = rng.integers(0, n, size=rows.size)
    vals = rng.normal(size=rows.size) + 1j * rng.normal(size=rows.size)
    return CSRMatrix.from_coo(rows, cols, vals, (n, n))


CONFIGS = [(1, 1), (4, 1), (32, 1), (32, 128), (32, 4096), (256, 4096)]


def test_sell_beta_sweep(benchmark):
    mat = powerlaw_matrix()
    ti, _ = build_topological_insulator(8, 8, 4)

    def build():
        rows = []
        for c, sigma in CONFIGS:
            s_pl = SellMatrix(mat, chunk_height=c, sigma=max(sigma, 1))
            s_ti = SellMatrix(ti, chunk_height=c, sigma=max(sigma, 1))
            rows.append([f"C={c}, sigma={sigma}", s_pl.beta, s_ti.beta])
        return rows

    rows = benchmark(build)
    text = format_table(
        ["config", "beta (power-law rows)", "beta (TI matrix)"], rows
    )
    text += (
        "\n\nbeta = nnz / stored slots. Sorting (sigma >> C) recovers the"
        "\npadding lost to large C; the TI stencil is nearly uniform so"
        "\nits beta barely moves — one reason CRS/SELL-1 suffices for the"
        "\npaper's SpMMV (Section IV-A)."
    )
    emit("ablation_sell", text)

    by = {r[0]: r for r in rows}
    assert by["C=1, sigma=1"][1] == pytest.approx(1.0)  # CRS: no padding
    # big unsorted chunks waste slots on power-law rows ...
    assert by["C=32, sigma=1"][1] < 0.6
    # ... and sorting recovers most of it
    assert by["C=32, sigma=4096"][1] > by["C=32, sigma=1"][1] * 1.5
    # TI rows are near-uniform: beta stays high even unsorted
    assert by["C=32, sigma=1"][2] > 0.85


def test_sell_padding_costs_flops(benchmark):
    """Charged traffic/flops include the zero fill-in, so a badly padded
    SELL matrix is measurably more expensive per multiplication."""
    from repro.util.counters import PerfCounters

    mat = powerlaw_matrix(n=2048)
    x = np.ascontiguousarray(
        np.ones((2048, 4), dtype=complex)
    )
    old = set_fast_backend(False)
    try:
        def run():
            out = {}
            for c, sigma in ((1, 1), (32, 1), (32, 2048)):
                s = SellMatrix(mat, chunk_height=c, sigma=sigma)
                counters = PerfCounters()
                spmmv(s, x, counters=counters)
                out[(c, sigma)] = (s.beta, counters.flops)
            return out

        data = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        set_fast_backend(old)
    rows = [
        [f"C={c}, sigma={s}", beta, flops]
        for (c, s), (beta, flops) in data.items()
    ]
    emit(
        "ablation_sell_flops",
        format_table(["config", "beta", "charged flops"], rows),
    )
    assert data[(32, 1)][1] > data[(1, 1)][1]  # padding costs flops
    assert data[(32, 2048)][1] < data[(32, 1)][1]  # sorting recovers
