"""Task-mode overlap: measured hidden vs exposed communication.

Runs the same distributed KPM problem through both engines with the
overlapped schedule off and on, per kernel backend and block width, and
records to ``results/BENCH_overlap.json``:

- wall-clock per run and the on/off delta;
- exposed communication per iteration — *measured* from the mp engine's
  obs spans (sync: the ``halo_exchange`` span is fully exposed;
  overlap: only the ``halo_wait`` span is) — next to the
  ``overlap.py`` model prediction
  ``max(0, t_halo - interior_fraction * t_compute)`` fed with the same
  measured inputs;
- the sim engine's analytic view: the :class:`NetworkModel`-priced
  message log as ``t_halo``, the kernel spans as ``t_compute``.

Honesty note: on a single-core container the overlapped schedule
cannot actually hide work behind the exchange — ranks time-share the
core — so the wall-clock delta can go either way; ``cpu_count`` is in
the payload.  What must hold everywhere is the *accounting*: the wait
that remains after the interior phase (measured exposed) is no larger
than the synchronous exchange, and the moments are bitwise identical
between the engines for each schedule (on-vs-off differ only in dot
reduction order, to 1e-12).
"""

import json
import os
import time

import numpy as np
import pytest

from _support import RESULTS_DIR, emit, format_table
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.halo import partition_matrix
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.mp import MpWorld
from repro.dist.network import NetworkModel
from repro.dist.overlap import exposed_communication_time, task_split
from repro.dist.partition import RowPartition
from repro.obs import MetricsRegistry
from repro.physics import build_topological_insulator
from repro.sparse.backend import available_backends

NX, NZ = 12, 8   # N = 4,608 rows; 2-rank slabs keep ~half the nnz interior
M = 64
WORKERS = 2
R_VALUES = [1, 8]


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _rank_mean(metrics, span, scale=1.0):
    """Mean per-record seconds of a rank-tagged span, averaged over ranks."""
    stats = [t for k, t in metrics.timers.items()
             if k.endswith(f".{span}") or k == span]
    if not stats:
        return 0.0
    return scale * sum(t.mean for t in stats) / len(stats)


def _run(h, part, scale, blk, world, backend, overlap):
    metrics = MetricsRegistry()
    t0 = time.perf_counter()
    eta = distributed_eta(h, part, scale, M, blk, world,
                          backend=backend, overlap=overlap,
                          metrics=metrics)
    return time.perf_counter() - t0, eta, metrics


@pytest.mark.slow
def test_overlap_hidden_vs_exposed():
    h, _ = build_topological_insulator(NX, NX, NZ)
    scale = lanczos_scale(h, seed=1)
    part = RowPartition.equal(h.n_rows, WORKERS, align=4)
    dist = partition_matrix(h, part)
    splits = [task_split(b) for b in dist.blocks]
    f_int = sum(s.nnz_interior for s in splits) / sum(
        s.nnz_interior + s.nnz_boundary for s in splits)

    net = NetworkModel()
    series = []
    backends = [n for n, ok in sorted(available_backends().items()) if ok]
    for backend in backends:
        for r in R_VALUES:
            blk = make_block_vector(h.n_rows, r, seed=2)
            # warm-up (first-use compilation, allocator)
            _run(h, part, scale, blk, SimWorld(WORKERS), backend, False)

            etas = {}
            for engine, mk_world in (("sim", SimWorld), ("mp", MpWorld)):
                row = {"engine": engine, "backend": backend, "r": r}
                per = {}
                for mode in ("off", "on"):
                    world = mk_world(WORKERS)
                    secs, eta, metrics = _run(
                        h, part, scale, blk, world, backend, mode == "on")
                    etas[(engine, mode)] = eta
                    per[mode] = (secs, metrics, world)
                t_off, m_off, w_off = per["off"]
                t_on, m_on, _ = per["on"]
                row["seconds_off"] = round(t_off, 4)
                row["seconds_on"] = round(t_on, 4)
                row["on_off_delta_pct"] = round(100 * (t_on - t_off) / t_off, 1)

                # per-iteration compute (the two split phases) and the
                # model's exposed-communication prediction from the same
                # measured quantities
                t_compute = (_rank_mean(m_on, "aug_spmmv_int")
                             + _rank_mean(m_on, "aug_spmmv_bnd"))
                if engine == "mp":
                    # measured: the sync exchange is fully exposed; under
                    # overlap only the post-interior wait is
                    exposed_off = _rank_mean(m_off, "halo_exchange")
                    exposed_on = _rank_mean(m_on, "halo_wait")
                    row["measured"] = {
                        "exposed_off_ms": round(1e3 * exposed_off, 4),
                        "exposed_on_ms": round(1e3 * exposed_on, 4),
                        "hidden_ms": round(1e3 * (exposed_off - exposed_on), 4),
                        "pack_ms": round(
                            1e3 * _rank_mean(m_on, "halo_pack"), 4),
                    }
                    t_halo = exposed_off
                else:
                    # analytic: price the (schedule-independent) message
                    # log with the network model
                    priced = net.price_log(w_off.log, n_ranks=WORKERS)
                    n_exch = M // 2
                    t_halo = priced["per_rank_max"] / n_exch
                row["model"] = {
                    "t_halo_ms": round(1e3 * t_halo, 4),
                    "t_compute_ms": round(1e3 * t_compute, 4),
                    "interior_fraction": round(f_int, 4),
                    "exposed_ms": round(1e3 * exposed_communication_time(
                        t_halo, t_compute, f_int), 4),
                }
                series.append(row)

            # real async execution == sequential simulation, bitwise,
            # for each schedule; across schedules the dot reduction
            # order differs, so tolerance applies
            for mode in ("off", "on"):
                assert np.array_equal(
                    etas[("mp", mode)], etas[("sim", mode)]), mode
            assert np.allclose(etas[("sim", "on")], etas[("sim", "off")],
                               atol=1e-12, rtol=1e-12)

    cores = _cores()
    payload = {
        "bench": "overlap",
        "cpu_count": cores,
        "matrix": {"n_rows": h.n_rows, "nnz": h.nnz, "nx": NX, "nz": NZ},
        "n_moments": M,
        "workers": WORKERS,
        "interior_fraction_nnz": round(f_int, 4),
        "series": series,
        "note": (
            "mp == sim bitwise for each schedule; on-vs-off agree to "
            "reduction-order tolerance; wall-clock hiding requires "
            ">= workers cores (cpu_count above)"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_overlap.json").write_text(
        json.dumps(payload, indent=2))

    rows = []
    for s in series:
        meas = s.get("measured", {})
        rows.append([
            s["engine"], s["backend"], s["r"], s["seconds_off"],
            s["seconds_on"],
            meas.get("exposed_off_ms", "-"), meas.get("exposed_on_ms", "-"),
            s["model"]["exposed_ms"],
        ])
    emit(
        "overlap_hidden_vs_exposed",
        format_table(
            ["engine", "backend", "r", "s(off)", "s(on)",
             "exp off ms", "exp on ms", "model exp ms"],
            rows,
        ) + f"\n(interior nnz fraction {f_int:.3f}, "
            f"host exposes {cores} core(s))",
    )

    # structural guarantees, host-independent
    assert all(s["seconds_off"] > 0 and s["seconds_on"] > 0 for s in series)
    for s in series:
        if s["engine"] != "mp":
            continue
        meas = s["measured"]
        # the post-interior wait must not exceed the fully synchronous
        # exchange: overlap can only reduce the exposed window
        assert meas["exposed_on_ms"] <= meas["exposed_off_ms"] * 1.05, s
