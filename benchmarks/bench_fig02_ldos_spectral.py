"""Paper Fig. 2: LDOS map of the dot superlattice and A(k, E).

Left panel: LDOS(z=0, E=0) resolves the quantum-dot superlattice — the
LDOS inside the dots differs from outside. Right panel: the
momentum-resolved spectral function A(k, E) along k_x shows dispersive
states.

Verified: dot/non-dot LDOS contrast; A(k, E) normalization (4 orbitals
per k); dispersion symmetric in +-k for the clean crystal.
"""

import numpy as np
import pytest

from _support import emit, format_table
from repro.core.solver import KPMSolver
from repro.physics import build_topological_insulator
from repro.physics.potentials import dot_superlattice_potential

NX, NZ = 20, 5
M = 256


@pytest.fixture(scope="module")
def system():
    h0, model = build_topological_insulator(NX, NX, NZ)
    pot = dot_superlattice_potential(
        model.lattice, v_dot=0.153, spacing=10, radius=3.0
    )
    h = model.build(pot)
    return h, model, pot


def test_fig02_ldos_map(benchmark, system):
    h, model, pot = system
    lat = model.lattice
    surf = lat.boundary_sites(2, 0)
    rows = 4 * surf
    solver = KPMSolver(h, n_moments=M, n_vectors=48, seed=21)

    def run():
        return solver.ldos(rows)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    at_zero = res.at_energy(0.0)
    dots = pot[surf] != 0
    inside, outside = at_zero[dots].mean(), at_zero[~dots].mean()
    contrast = inside / outside
    text = format_table(
        ["where", "sites", "mean LDOS(z=0, E=0)"],
        [
            ["inside dots", int(dots.sum()), float(inside)],
            ["outside dots", int((~dots).sum()), float(outside)],
        ],
    )
    text += (
        f"\n\ncontrast (inside/outside): {contrast:.2f} — the LDOS map"
        "\nresolves the dot superlattice (paper Fig. 2, left panel;"
        f"\nV_dot = 0.153, D = 10 here vs 100 in the paper)."
    )
    emit("fig02_ldos_map", text)
    assert abs(np.log(contrast)) > 0.02  # dots visibly imprint on the LDOS


def test_fig02_spectral_function(benchmark, system):
    h, model, _ = system
    solver = KPMSolver(h, n_moments=M, n_vectors=1, seed=4)
    kxs = np.linspace(-0.12 * np.pi, 0.12 * np.pi, 7)
    ks = [(kx, 0.0, 0.0) for kx in kxs]

    def run():
        return solver.spectral_function(model.lattice, ks)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    band = res.band_maximum()
    rows = [
        [f"{kx / np.pi:+.3f}", float(e)] for kx, e in zip(kxs, band)
    ]
    text = format_table(["kx/pi", "E_max(k)"], rows)
    norms = [
        float(np.trapezoid(res.a_ke[i], res.energies)) for i in range(len(ks))
    ]
    text += (
        f"\n\nintegral of A(k, E) over E: {np.mean(norms):.2f} per k"
        "\n(4 orbitals -> 4; paper Fig. 2 right panel shows the"
        "\ncorresponding dispersive band structure)"
    )
    emit("fig02_spectral_function", text)
    for nrm in norms:
        assert nrm == pytest.approx(4.0, rel=0.1)
    # +-k symmetry of the dispersion in the (x-periodic) crystal
    assert np.allclose(band, band[::-1], atol=0.15)
