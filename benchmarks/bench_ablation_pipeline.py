"""Paper outlook: pipelined GPU-CPU-MPI communication, quantified.

"A promising optimization is to establish a pipeline for this
GPU-CPU-MPI communication, i.e., download parts of the communication
buffer to the host and transfer previous chunks via the network at the
same time." (paper Section VII)

The network model supports this (``pcie_overlap=True``): PCIe staging of
a halo buffer overlaps with its network transfer instead of serializing.
This bench quantifies the gain across the weak-scaling series — largest
where communication is the biggest fraction, i.e. the Square case at
scale.
"""

import pytest

from _support import emit, format_table
from repro.dist.network import NetworkModel
from repro.dist.scaling_model import ClusterModel

NODES = [4, 64, 1024]


def test_pipeline_gain(benchmark):
    serial = ClusterModel(r=32)
    piped = ClusterModel(r=32, network=NetworkModel(pcie_overlap=True))

    def build():
        rows = []
        for case in ("square", "bar"):
            for res_s, res_p in zip(
                serial.weak_scaling(case, NODES, m=2000),
                piped.weak_scaling(case, NODES, m=2000),
            ):
                gain = res_p["tflops"] / res_s["tflops"] - 1.0
                rows.append(
                    [case, int(res_s["nodes"]), res_s["tflops"],
                     res_p["tflops"], f"{gain:+.1%}"]
                )
        return rows

    rows = benchmark(build)
    text = format_table(
        ["case", "nodes", "Tflop/s (serial PCIe)",
         "Tflop/s (pipelined)", "gain"],
        rows,
    )
    text += (
        "\n\nPipelining the PCIe staging recovers part of the halo cost;"
        "\nthe gain is largest for the communication-heavy Square case."
    )
    emit("ablation_pipeline", text)

    sq = [r for r in rows if r[0] == "square" and r[1] > 1]
    for r in sq:
        assert r[3] >= r[2]  # pipelining never loses
    # a measurable (not dramatic) gain at scale — a few percent
    gain_1024 = sq[-1][3] / sq[-1][2] - 1
    assert 0.005 <= gain_1024 <= 0.2


def test_pipeline_at_iteration_level(benchmark):
    """Direct per-iteration view of the halo-time reduction."""
    serial = ClusterModel(r=32)
    piped = ClusterModel(r=32, network=NetworkModel(pcie_overlap=True))

    def build():
        dom = (6400, 6400, 40)
        it_s = serial.iteration_times(dom, 1024)
        it_p = piped.iteration_times(dom, 1024)
        return it_s, it_p

    it_s, it_p = benchmark(build)
    emit(
        "ablation_pipeline_iteration",
        format_table(
            ["component", "serial (ms)", "pipelined (ms)"],
            [
                [k, it_s[k] * 1e3, it_p[k] * 1e3]
                for k in ("compute", "halo", "reduce", "total")
            ],
        ),
    )
    assert it_p["halo"] < it_s["halo"]
    assert it_p["compute"] == it_s["compute"]
