"""Cross-validation: functional GPU simulator vs analytic device model.

Two independent routes predict the GPU kernel's behavior:

* ``repro.hw`` *counts* — execute the Fig. 6 kernel functionally at a
  small problem size and convert the counted transactions into Gflop/s
  with the occupancy/latency timing model, and
* ``repro.perf`` *models* — the analytic traffic + roofline pipeline at
  the same size.

They share no code path beyond the architecture record, so agreement in
shape (monotone R-trends, R=1 penalty of the block mapping, transaction
linearity) is a genuine consistency check of the reproduction.
"""

import numpy as np
import pytest

from _support import emit, format_table
from repro.hw.gpu import KeplerGpu
from repro.hw.timing import GpuTimingModel
from repro.perf.arch import K20M
from repro.physics import build_topological_insulator

R_SWEEP = (2, 8, 32)


def test_sim_vs_model_trends(benchmark):
    h, _ = build_topological_insulator(8, 8, 4)
    n = h.n_rows
    rng = np.random.default_rng(0)
    timing = GpuTimingModel()
    gpu = KeplerGpu()

    def build():
        rows = []
        for r in R_SWEEP:
            V = np.ascontiguousarray(
                rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
            )
            W = np.ascontiguousarray(
                rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
            )
            _, _, stats = gpu.run_aug_spmmv(h, V, W, 0.2, 0.0)
            est = timing.estimate(stats, K20M)
            rows.append(
                [r, stats.flops / 1e6, timing.gflops(stats, K20M),
                 est["occupancy"], stats.sm_efficiency()]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["R", "Mflops counted", "sim Gflop/s", "occupancy", "SM eff"],
        rows,
    )
    text += (
        "\n\n(small problem: absolute Gflop/s are occupancy-limited; the"
        "\ntrends — more warps with R, flops linear in R — must and do"
        "\nmatch the analytic model's structure)"
    )
    emit("hw_validation", text)

    flops = [r[1] for r in rows]
    # counted flops scale linearly with R
    assert flops[1] == pytest.approx(4 * flops[0], rel=0.02)
    assert flops[2] == pytest.approx(16 * flops[0], rel=0.02)
    # more lanes per row -> more warps -> better occupancy at fixed N
    occ = [r[3] for r in rows]
    assert occ[2] >= occ[1] >= occ[0]
    # throughput improves with occupancy on this undersized problem
    g = [r[2] for r in rows]
    assert g[2] > g[0]
