"""Ablation: heterogeneous work-distribution weights.

The paper tunes the CPU/GPU row weights experimentally but notes "a good
guess is to calculate the weights from the single-device performance
numbers" (Section VI-B). This bench sweeps the GPU weight around that
guess and evaluates the resulting node performance with the load-balance
model: the slowest device determines the iteration time, so the optimum
sits where both devices finish together — i.e. at the performance-ratio
guess.
"""

import numpy as np
import pytest

from _support import emit, format_table
from repro.dist.partition import RowPartition, weights_from_performance
from repro.perf.arch import PIZ_DAINT_NODE
from repro.perf.roofline import node_performance


def node_gflops_for_weight(w_gpu: float, p_cpu: float, p_gpu: float) -> float:
    """Effective node Gflop/s when the GPU gets a fraction w_gpu of rows.

    Iteration time = max(w_cpu/p_cpu, w_gpu/p_gpu) per unit work; the
    node rate is 1 / that maximum.
    """
    w_cpu = 1.0 - w_gpu
    t = max(w_cpu / p_cpu, w_gpu / p_gpu)
    return 1.0 / t


def test_weight_sweep(benchmark):
    perf = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
    p_cpu, p_gpu = perf["cpu"], perf["gpu"]
    guess = weights_from_performance([p_cpu, p_gpu])[1]

    def build():
        rows = []
        for w in np.linspace(0.30, 0.95, 14):
            rows.append([w, node_gflops_for_weight(w, p_cpu, p_gpu)])
        rows.append([guess, node_gflops_for_weight(guess, p_cpu, p_gpu)])
        return rows

    rows = benchmark(build)
    text = format_table(["GPU weight", "node Gflop/s"], rows)
    best = max(rows, key=lambda r: r[1])
    text += (
        f"\n\nperformance-guess weight: {guess:.3f} "
        f"-> {node_gflops_for_weight(guess, p_cpu, p_gpu):.1f} Gflop/s"
        f"\nswept optimum:            {best[0]:.3f} -> {best[1]:.1f} Gflop/s"
        "\n(the guess sits at the optimum — the paper's observation that"
        "\nthe single-device numbers are a good starting point)"
    )
    emit("ablation_weights", text)

    assert abs(best[0] - guess) < 0.06
    assert node_gflops_for_weight(guess, p_cpu, p_gpu) >= 0.98 * best[1]
    # degenerate weights lose badly
    assert node_gflops_for_weight(0.3, p_cpu, p_gpu) < 0.7 * best[1]


def test_weight_misbalance_costs_rows(benchmark):
    """Row-level view: a misweighted partition idles the fast device."""
    perf = node_performance(PIZ_DAINT_NODE, "aug_spmmv", r=32)
    weights = weights_from_performance([perf["cpu"], perf["gpu"]])
    n = 1_000_000

    def build():
        good = RowPartition.from_weights(n, weights, align=4)
        bad = RowPartition.from_weights(n, [0.5, 0.5], align=4)
        return good, bad

    good, bad = benchmark(build)
    # finish-time proxy: local rows / device speed
    speeds = np.array([perf["cpu"], perf["gpu"]])
    t_good = (good.counts() / speeds).max()
    t_bad = (bad.counts() / speeds).max()
    emit(
        "ablation_weights_rows",
        format_table(
            ["partition", "rows cpu", "rows gpu", "rel. finish time"],
            [
                ["performance guess", int(good.counts()[0]),
                 int(good.counts()[1]), 1.0],
                ["equal split", int(bad.counts()[0]), int(bad.counts()[1]),
                 t_bad / t_good],
            ],
        ),
    )
    assert t_bad > 1.15 * t_good
