"""Paper Fig. 10: achieved K20m bandwidths per memory level and kernel.

Three panels, one per kernel variant:

(a) simple SpMMV, (b) augmented SpMMV without on-the-fly dot products,
(c) fully augmented SpMMV.

Expected shapes (paper Section V-B): at R = 1 all kernels are DRAM-bound
at ~150 GB/s with L2/TEX "not much higher"; with growing R the DRAM
bandwidth decreases while L2 (and TEX) rise and saturate — the
bottleneck moves into the cache hierarchy; panel (c) shows all levels at
a significantly lower level because the in-kernel reductions make it
latency-bound.
"""

import pytest

from _support import emit, format_table
from repro.perf.arch import K20M
from repro.perf.roofline import gpu_level_bandwidths

R_SWEEP = (1, 8, 16, 32, 64)
KERNELS = {
    "a_simple_spmmv": "spmmv",
    "b_aug_no_dots": "aug_spmmv_nodot",
    "c_fully_augmented": "aug_spmmv",
}


def test_fig10(benchmark):
    def build():
        out = {}
        for label, kernel in KERNELS.items():
            out[label] = [
                [r] + [gpu_level_bandwidths(K20M, kernel, r)[k]
                       for k in ("dram", "l2", "tex")]
                for r in R_SWEEP
            ]
        return out

    panels = benchmark(build)
    parts = []
    for label, rows in panels.items():
        parts.append(f"\npanel ({label}):")
        parts.append(
            format_table(["R", "DRAM GB/s", "L2 GB/s", "TEX GB/s"], rows)
        )
    text = "\n".join(parts)
    text += (
        "\n\nPaper Fig. 10: (a)/(b) start DRAM-bound at 150 GB/s, become"
        "\nL2-bound at large R; (c) sits at a much lower level (latency)."
    )
    emit("fig10_gpu_bandwidth", text)

    a = {r[0]: r for r in panels["a_simple_spmmv"]}
    c = {r[0]: r for r in panels["c_fully_augmented"]}
    # (a): DRAM-bound at R=1, L2 saturates at large R, DRAM decreases
    assert a[1][1] == pytest.approx(K20M.bandwidth_gbs, rel=0.02)
    assert a[64][2] == pytest.approx(K20M.llc_bandwidth_gbs, rel=0.02)
    assert a[64][1] < a[1][1]
    # (c): everything significantly lower
    for r in R_SWEEP:
        assert c[r][2] < 0.5 * K20M.llc_bandwidth_gbs
        assert c[r][1] <= a[r][1]
