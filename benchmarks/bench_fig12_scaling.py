"""Paper Fig. 12: weak and strong scaling up to 1024 Piz Daint nodes.

Weak scaling for the "Square" and "Bar" domain families (base
400 x 100 x 40 per node), plus strong scaling at the problem size of
each curve's first point. Verifies:

* >100 Tflop/s on 1024 nodes for the Square case (~10% of aggregate
  CPU+GPU peak),
* the efficiency drop of the Square case when the y extent starts
  growing (1 -> 4 nodes), flat thereafter,
* near-ideal Bar weak scaling,
* monotonically decaying strong-scaling efficiency.
"""

import pytest

from _support import emit, format_table
from repro.dist.scaling_model import ClusterModel
from repro.perf.arch import PIZ_DAINT_NODE

NODES = [1, 4, 16, 64, 256, 1024]


@pytest.fixture(scope="module")
def model():
    return ClusterModel(r=32)


def test_fig12_weak(benchmark, model):
    def build():
        return {
            case: model.weak_scaling(case, NODES, m=2000)
            for case in ("square", "bar")
        }

    series = benchmark(build)
    parts = []
    for case, rows in series.items():
        parts.append(f"\nweak scaling — {case}:")
        parts.append(
            format_table(
                ["nodes", "domain", "Tflop/s", "efficiency"],
                [
                    [int(r["nodes"]), str(r["domain"]), r["tflops"],
                     f"{r['efficiency']:.1%}"]
                    for r in rows
                ],
            )
        )
    tf_1024 = series["square"][-1]["tflops"]
    peak = 1024 * PIZ_DAINT_NODE.aggregate_peak_gflops / 1000.0
    parts.append(
        f"\n1024-node Square: {tf_1024:.1f} Tflop/s = "
        f"{tf_1024 / peak:.1%} of aggregate peak "
        "(paper: >100 Tflop/s, ~10% of peak)"
    )
    emit("fig12_weak_scaling", "\n".join(parts))

    assert tf_1024 > 100.0
    assert 0.06 <= tf_1024 / peak <= 0.12
    sq = series["square"]
    assert sq[1]["efficiency"] < 0.97  # the 1 -> 4 node drop
    for s, b in zip(sq[1:], series["bar"][1:]):
        assert b["efficiency"] >= s["efficiency"]


def test_fig12_strong(benchmark, model):
    def build():
        return {
            "square@4": model.strong_scaling((400, 400, 40), [4, 16, 64, 256]),
            "square@64": model.strong_scaling(
                (1600, 1600, 40), [64, 256, 1024]
            ),
            "bar@4": model.strong_scaling(
                (1600, 100, 40), [4, 16, 64], case="bar"
            ),
        }

    series = benchmark(build)
    parts = []
    for label, rows in series.items():
        parts.append(f"\nstrong scaling — {label}:")
        parts.append(
            format_table(
                ["nodes", "Tflop/s", "speedup", "efficiency"],
                [
                    [int(r["nodes"]), r["tflops"], r["speedup"],
                     f"{r['efficiency']:.1%}"]
                    for r in rows
                ],
            )
        )
    emit("fig12_strong_scaling", "\n".join(parts))

    for rows in series.values():
        effs = [r["efficiency"] for r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
        sps = [r["speedup"] for r in rows]
        assert all(b > a for a, b in zip(sps, sps[1:]))
