"""Elastic rebalancing under a skewed rank: modeled win, measured cost.

Two halves, matching the two things elasticity changes:

1. **Modeled win** — a deterministic per-row timer makes rank 0 run 4x
   slower (the shared-tenant scenario from ROADMAP item 5).  The sim
   engine feeds that timer to the rebalance monitor exactly as the mp
   engine feeds measured busy spans, so the recorded per-segment busy
   times let us integrate the *modeled* wall clock — max over ranks per
   segment — for a static partition vs. an elastic run that shifts rows
   off the slow rank.  This is the honest way to show the win on a CI
   box: a real ``slow`` fault injects a row-count-independent sleep, so
   moving rows would not move the measured clock at all.
2. **Measured cost** — on a *balanced* run, elasticity is pure
   overhead: segmentation, boundary checkpoints, busy-span collection,
   monitor bookkeeping.  We clock a plain uninterrupted grid-mode mp
   run against the same run under ``elastic_eta`` and record the ratio.
   The segments replay the identical kernels, so the gap is pure
   harness cost — boundary checkpoint copies of the (N, R) state plus
   busy-span collection — and shrinks as the per-iteration compute
   grows; at this deliberately small bench size it is visible.

Both halves assert the invariant that makes any of this deployable:
every eta is bitwise identical to the uninterrupted single-partition
reference.  Writes ``results/BENCH_elastic.json``.
"""

import json
import time

import numpy as np
import pytest

from _support import RESULTS_DIR, emit, format_table, warn_if_single_core
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.elastic import RebalancePolicy, elastic_eta
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.partition import RowPartition
from repro.physics import build_topological_insulator

NX, NZ = 24, 8        # N = 18,432 rows
R_BLOCK = 4
M = 64                # 32 inner iterations: room for several segments
GRID = 64
WORKERS = 3
SKEW = 4.0            # rank 0 runs this many times slower per row
REPS = 3


@pytest.fixture(scope="module")
def system():
    h, _ = build_topological_insulator(NX, NX, NZ)
    scale = SpectralScale.from_bounds(*h.gershgorin_bounds())
    block = make_block_vector(h.n_rows, R_BLOCK, seed=2)
    part1 = RowPartition.equal(h.n_rows, 1, align=GRID)
    ref = distributed_eta(h, part1, scale, M, block, SimWorld(1),
                          eta_grid=GRID)
    return h, scale, block, ref


def skewed_timer(rank: int, n_rows: int) -> float:
    return n_rows * (SKEW if rank == 0 else 1.0)


def modeled_seconds(segments) -> float:
    """Integrate the timer model: each segment takes as long as its
    slowest rank (``busy`` already totals the segment's iterations)."""
    return sum(max(seg.busy) for seg in segments if seg.busy)


def test_elastic_bench_json(benchmark, system):
    h, scale, block, ref = system
    cores = warn_if_single_core("bench_elastic")
    pol = RebalancePolicy(grid=GRID, interval=8)

    # -- half 1: modeled win under a 4x-skewed rank (sim timer) --------
    static_pol = RebalancePolicy(grid=GRID, interval=8,
                                 threshold=float("inf"))  # never trips
    eta_static, rep_static = elastic_eta(
        h, scale, M, block, n_workers=WORKERS, policy=static_pol,
        engine="sim", timer=skewed_timer,
    )
    eta_reb, rep_reb = elastic_eta(
        h, scale, M, block, n_workers=WORKERS, policy=pol,
        engine="sim", timer=skewed_timer,
    )
    assert np.array_equal(eta_static, ref)
    assert np.array_equal(eta_reb, ref)
    assert rep_reb.rebalances >= 1 and rep_static.rebalances == 0
    t_static = modeled_seconds(rep_static.segments)
    t_reb = modeled_seconds(rep_reb.segments)
    assert t_reb < t_static, (
        f"rebalancing did not reduce modeled time "
        f"({t_static:.0f} -> {t_reb:.0f} row-units)"
    )
    rows0 = [s.offsets[1] - s.offsets[0] for s in rep_reb.segments]

    # -- half 2: measured overhead on a balanced run (mp engine) -------
    partw = RowPartition.equal(h.n_rows, WORKERS, align=GRID)
    plain_best = elastic_best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        eta_plain = distributed_eta(h, partw, scale, M, block,
                                    SimWorld(WORKERS), eta_grid=GRID)
        plain_best = min(plain_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        eta_elastic, rep = elastic_eta(
            h, scale, M, block, n_workers=WORKERS, policy=pol,
            engine="sim",
        )
        elastic_best = min(elastic_best, time.perf_counter() - t0)
    assert np.array_equal(eta_plain, ref)
    assert np.array_equal(eta_elastic, ref)
    overhead = elastic_best / plain_best

    payload = {
        "bench": "elastic",
        "n_rows": h.n_rows,
        "nnz": h.nnz,
        "r_block": R_BLOCK,
        "n_moments": M,
        "grid": GRID,
        "workers": WORKERS,
        "skew": SKEW,
        "cpu_count": cores,
        "single_core_caveat": cores == 1,
        "modeled": {
            "unit": "row-units of the slowest rank, summed over segments",
            "static_partition": t_static,
            "with_rebalancing": t_reb,
            "speedup": t_static / t_reb,
            "rebalances": rep_reb.rebalances,
            "slow_rank_rows_per_segment": rows0,
            "imbalance_first": rep_reb.segments[0].imbalance,
            "imbalance_last": rep_reb.segments[-1].imbalance,
        },
        "measured_balanced_overhead": {
            "plain_grid_seconds": plain_best,
            "elastic_seconds": elastic_best,
            "ratio": overhead,
            "segments": len(rep.segments),
        },
        "eta_bitwise_everywhere": True,  # asserted above
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_elastic.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        ["static", f"{t_static:.0f}", 1.0,
         f"{rep_static.segments[0].imbalance:.2f}", "yes"],
        ["rebalanced", f"{t_reb:.0f}", t_static / t_reb,
         f"{rep_reb.segments[-1].imbalance:.2f}", "yes"],
    ]
    emit(
        "elastic",
        format_table(
            ["partition", "modeled time", "speedup", "imbalance", "bitwise"],
            rows,
        )
        + f"\n(rank 0 skewed {SKEW:g}x, {WORKERS} workers, "
        f"N = {h.n_rows:,} rows, M = {M}; balanced-run elastic overhead "
        f"ratio {overhead:.2f})",
    )
