"""Paper Fig. 9: per-level data volume on the K20m vs block width R.

Regenerates the measured-volume series (DRAM / L2 / texture cache) for
the simple SpMMV kernel from the analytic traffic model at the paper's
problem size, and validates the model's structure against the functional
GPU simulator's transaction counts at a small problem size.

Expected shape (paper Section V-B): texture volume scales linearly with
R (matrix broadcast to the lanes of a warp); the accumulated volume *per
block vector* decreases with growing R (matrix amortization).
"""

import pytest

from _support import emit, format_table
from repro.hw.gpu import KeplerGpu
from repro.perf.arch import K20M
from repro.perf.traffic import gpu_level_traffic
from repro.physics import build_topological_insulator

N_PAPER = 1_600_000


def test_fig09_model(benchmark):
    def build():
        rows = []
        for r in (1, 8, 16, 32, 64):
            t = gpu_level_traffic("spmmv", r, N_PAPER, 13.0, K20M)
            pv = t.per_vector(r)
            rows.append(
                [r, t.dram / 1e6, t.l2 / 1e6, t.tex / 1e6,
                 pv.dram / 1e6, (pv.dram + pv.l2 + pv.tex) / 1e6]
            )
        return rows

    rows = benchmark(build)
    text = format_table(
        ["R", "DRAM (MB)", "L2 (MB)", "TEX (MB)",
         "DRAM/vec (MB)", "sum/vec (MB)"],
        rows,
    )
    text += (
        "\n\nPaper Fig. 9 (simple SpMMV on K20m, N = 1.6e6): TEX grows"
        "\nlinearly with R; DRAM per vector decreases; accumulated volume"
        "\nper vector decreases."
    )
    emit("fig09_gpu_traffic", text)

    tex = [r[3] for r in rows]
    assert tex[1] == pytest.approx(8 * tex[0], rel=0.05)  # linear in R
    dram_pv = [r[4] for r in rows]
    assert all(b < a for a, b in zip(dram_pv, dram_pv[1:]))


def test_fig09_simulator_validation(benchmark):
    """Functional-simulator transaction counts vs the analytic model."""
    import numpy as np

    h, _ = build_topological_insulator(6, 6, 4)
    n = h.n_rows
    rng = np.random.default_rng(0)

    def run():
        out = {}
        for r in (1, 8, 32):
            V = np.ascontiguousarray(
                rng.normal(size=(n, r)) + 1j * rng.normal(size=(n, r))
            )
            W = np.zeros((n, r), dtype=complex)
            _, _, stats = KeplerGpu().run_aug_spmmv(
                h, V, W, 0, 0, with_dots=False, fused_update=False
            )
            out[r] = stats
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for r in sorted(stats):
        s = stats[r]
        a = gpu_level_traffic("spmmv", r, n, h.nnzr, K20M)
        rows.append(
            [r, s.tex_bytes / 1e3, a.tex / 1e3,
             s.l2_bytes / 1e3, a.l2 / 1e3]
        )
    text = format_table(
        ["R", "TEX sim (kB)", "TEX model (kB)", "L2 sim (kB)", "L2 model (kB)"],
        rows,
    )
    emit("fig09_simulator_validation", text)
    for row in rows:
        assert row[1] == pytest.approx(row[2], rel=1e-6)  # TEX exact
        if row[0] >= 8:
            # at tiny R the simulator's 32-byte transaction granularity
            # dominates the 4-byte index stream; compare where gathers rule
            assert row[3] == pytest.approx(row[4], rel=0.45)
