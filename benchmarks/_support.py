"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one table or figure of the paper: it computes the
series, prints it (visible with ``pytest -s``), and writes it to
``benchmarks/results/<name>.txt`` so the reproduction record survives the
run. ``EXPERIMENTS.md`` summarizes these outputs against the paper.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def format_table(headers: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    """Fixed-width text table."""
    if widths is None:
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) + 2
            for i, h in enumerate(headers)
        ]
    out = ["".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    out.append("".join("-" * w for w in widths))
    for r in rows:
        out.append("".join(_fmt(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
