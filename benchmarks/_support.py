"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one table or figure of the paper: it computes the
series, prints it (visible with ``pytest -s``), and writes it to
``benchmarks/results/<name>.txt`` so the reproduction record survives the
run. ``EXPERIMENTS.md`` summarizes these outputs against the paper.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def host_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def warn_if_single_core(bench: str) -> int:
    """Record — and loudly flag — a single-core host.

    Parallel speedup benches are meaningless on one core: the mp engine
    can only tie or lose to the sequential simulator.  Every bench whose
    numbers depend on core count calls this, stores the returned count in
    its payload, and the warning makes the limitation visible in the
    pytest run itself rather than only in a JSON field.
    """
    cores = host_cores()
    if cores == 1:
        warnings.warn(
            f"{bench}: host exposes a single core; parallel speedups "
            "cannot materialize here and the recorded numbers only "
            "establish correctness/overhead, not scaling "
            "(payload records cpu_count=1)",
            RuntimeWarning,
            stacklevel=2,
        )
    return cores


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def format_table(headers: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    """Fixed-width text table."""
    if widths is None:
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) + 2
            for i, h in enumerate(headers)
        ]
    out = ["".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    out.append("".join("-" * w for w in widths))
    for r in rows:
        out.append("".join(_fmt(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
