"""Paper outlook: model-driven performance engineering for Xeon Phi.

"Although the Intel Xeon Phi coprocessor is already supported in our
software, we still have to carry out detailed model-driven performance
engineering for this architecture and the KPM application."
(paper Section VII)

This bench performs that engineering with the same apparatus used for
IVB/SNB: code balance, Omega, memory and LLC rooflines per optimization
stage and block width. The headline prediction: KNC's machine balance
(~0.15 B/F) is even lower than the GPUs', so the blocked kernel is
*mandatory* there — the R = 1 augmented kernel leaves >70% of the
achievable performance on the table.
"""

import pytest

from _support import emit, format_table
from repro.perf.arch import KNC, SNB
from repro.perf.balance import bmin
from repro.perf.roofline import cpu_kernel_performance, custom_roofline


def test_knc_stage_sweep(benchmark):
    def build():
        rows = []
        for stage, r in (("naive", 1), ("aug_spmv", 1),
                         ("aug_spmmv", 8), ("aug_spmmv", 32)):
            rows.append(
                [f"{stage} (R={r})",
                 cpu_kernel_performance(KNC, stage, r),
                 cpu_kernel_performance(SNB, stage, r)]
            )
        return rows

    rows = benchmark(build)
    text = format_table(
        ["kernel", "KNC (Gflop/s)", "SNB (Gflop/s)"], rows
    )
    text += (
        f"\n\nKNC machine balance: {KNC.machine_balance:.3f} B/F "
        f"(SNB: {SNB.machine_balance:.3f})"
        f"\nB_min(1) = {bmin(1):.2f} -> even stage 1 is deeply memory-"
        "\nbound on KNC; only the blocked kernel approaches the device's"
        "\npotential — the same conclusion the paper reaches for the GPUs."
    )
    emit("outlook_knc", text)

    by = {r[0]: r for r in rows}
    # blocked essential: stage2(32) much faster than stage1 on KNC
    assert by["aug_spmmv (R=32)"][1] > 1.8 * by["aug_spmv (R=1)"][1]
    # the many weak cores pay off (vs SNB) once the kernel is blocked
    assert by["aug_spmmv (R=32)"][1] > 1.5 * by["aug_spmmv (R=32)"][2]
    # monotone stage ordering holds on KNC too
    vals = [by[k][1] for k in
            ("naive (R=1)", "aug_spmv (R=1)", "aug_spmmv (R=8)")]
    assert vals[0] < vals[1] < vals[2]


def test_knc_custom_roofline(benchmark):
    def build():
        return {
            r: custom_roofline(KNC, r) for r in (1, 4, 16, 64)
        }

    data = benchmark(build)
    rows = [
        [r, d["p_mem"], d["p_llc"], d["p_star"]]
        for r, d in sorted(data.items())
    ]
    emit(
        "outlook_knc_roofline",
        format_table(["R", "P*_MEM", "P*_LLC", "P*"], rows),
    )
    # the memory->cache bound migration happens on KNC too
    assert data[1]["p_star"] == data[1]["p_mem"]
    assert data[64]["p_star"] == pytest.approx(
        min(data[64]["p_mem"], data[64]["p_llc"])
    )
