"""Paper Fig. 8: custom roofline for the augmented SpM(M)V on IVB.

Sweeps the block width R and prints P*_MEM (Eq. (10), with the measured
Omega folded into the code balance), P*_LLC, and their minimum (Eq. (11)).
Omega comes from two independent sources that must agree in shape:

* the parametric cache-pressure model (used at the paper's problem size),
* the exact LRU cache simulator, run on a proportionally downsized
  problem with a proportionally downsized cache (standard technique).

Expected shape: memory-bound until R ~ 4, LLC-bound after; Omega ~= 1 at
small R growing to ~1.5 at R = 32 (the paper's annotations).
"""

import pytest

from _support import emit, format_table
from repro.perf.arch import IVB
from repro.perf.cachesim import simulate_kpm_omega
from repro.perf.roofline import custom_roofline
from repro.perf.traffic import omega_parametric
from repro.physics import build_topological_insulator

# the paper's node-level domain: 100 x 100 x 40 -> N = 1.6e6 rows
N_PAPER = 1_600_000
STENCIL_ROWS = 2 * 4 * 100 * 100  # z-neighbor reuse span of the TI stencil


def test_fig08_model(benchmark):
    def build():
        rows = []
        for r in (1, 2, 4, 8, 16, 32):
            om = omega_parametric(r, N_PAPER, 13.0, IVB.llc_bytes, STENCIL_ROWS)
            d = custom_roofline(IVB, r, omega=om)
            rows.append([r, om, d["p_mem"], d["p_llc"], d["p_star"]])
        return rows

    rows = benchmark(build)
    text = format_table(
        ["R", "Omega", "P*_MEM", "P*_LLC", "P* = min (Gflop/s)"], rows
    )
    text += (
        "\n\nPaper Fig. 8: memory-bound (P*_MEM) at small R, LLC-bound at"
        "\nlarge R; measured ~65 Gflop/s at R = 16-32, Omega annotations"
        "\n1 / ~1.16 / ~1.28 / ~1.54. Model agrees within the paper's own"
        "\n15% accuracy statement."
    )
    emit("fig08_custom_roofline", text)

    by_r = {r[0]: r for r in rows}
    assert by_r[1][4] == by_r[1][2]  # memory-bound at R=1
    assert by_r[32][4] == by_r[32][3]  # LLC-bound at R=32
    assert by_r[1][1] == pytest.approx(1.0)
    assert 1.3 <= by_r[32][1] <= 1.7
    assert 55 <= by_r[32][4] <= 75


def test_fig08_omega_cachesim(benchmark):
    """Downsized exact-LRU measurement of Omega agrees with the model."""
    # downsize: domain 20x20x10 (N = 16k rows), cache scaled by the same
    # factor as the stencil reuse window (4*Nx*Ny rows)
    h, _ = build_topological_insulator(20, 20, 10)
    scale_factor = (4 * 20 * 20) / (4 * 100 * 100)
    cache = int(IVB.llc_bytes * scale_factor)

    def run():
        return {
            r: simulate_kpm_omega(h, r, cache) for r in (1, 4, 16, 32)
        }

    omegas = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            r,
            omegas[r],
            omega_parametric(r, h.n_rows, h.nnzr, cache, 2 * 4 * 20 * 20),
        ]
        for r in sorted(omegas)
    ]
    text = format_table(["R", "Omega (LRU sim)", "Omega (parametric)"], rows)
    emit("fig08_omega_cachesim", text)
    assert omegas[1] <= 1.1
    assert omegas[32] > omegas[1]
