"""Paper Fig. 1: DOS of the topological insulator (KPM-DOS algorithm).

The paper computes the DOS of a 1600 x 1600 x 40 sample (N ~ 4e8) with a
quantum-dot superlattice; here the same generator runs at bench scale
(domain configurable). Both panels are regenerated: the full spectral
range and the |E| < 0.15 zoom.

Verified invariants: the DOS integrates to N, is non-negative
(Jackson kernel), spans the expected TI bandwidth, and the low-energy
zoom carries the dot-induced spectral weight.
"""

import numpy as np
import pytest

from _support import emit, format_table
from repro.core.reconstruct import integrate_density, reconstruct_dos
from repro.core.solver import KPMSolver
from repro.physics import build_topological_insulator
from repro.physics.potentials import dot_superlattice_potential

NX, NZ = 24, 8  # bench-scale stand-in for the paper's 1600 x 1600 x 40
M, R = 512, 8


@pytest.fixture(scope="module")
def dos_result():
    h0, model = build_topological_insulator(NX, NX, NZ)
    pot = dot_superlattice_potential(model.lattice, v_dot=0.153, spacing=12)
    h = model.build(pot)
    solver = KPMSolver(h, n_moments=M, n_vectors=R, seed=11)
    return h, solver, solver.dos()


def test_fig01_full_range(benchmark, dos_result):
    h, solver, dos = dos_result

    def reconstruct():
        return reconstruct_dos(dos.moments, dos.scale, n_points=1024)

    energies, rho = benchmark(reconstruct)
    total = integrate_density(energies, rho)
    sample = np.linspace(energies[2], energies[-3], 12)
    rows = [
        [f"{e:+.2f}", float(np.interp(e, energies, rho)) / h.n_rows]
        for e in sample
    ]
    text = format_table(["E", "DOS/N"], rows)
    text += (
        f"\n\nN = {h.n_rows:,} (paper: 4.1e8); DOS integral = {total:,.0f}"
        f"\npanel 1 range: [{energies[0]:+.2f}, {energies[-1]:+.2f}]"
    )
    emit("fig01_dos_full", text)
    assert total == pytest.approx(h.n_rows, rel=0.03)
    assert np.all(rho > -1e-9)


def test_fig01_zoom(benchmark, dos_result):
    h, solver, dos = dos_result
    zoom = np.linspace(-0.15, 0.15, 241)

    def reconstruct():
        return reconstruct_dos(dos.moments, dos.scale, energies=zoom)

    energies, rho = benchmark(reconstruct)
    rows = [
        [f"{e:+.3f}", float(np.interp(e, energies, rho)) / h.n_rows]
        for e in np.linspace(-0.14, 0.14, 8)
    ]
    text = format_table(["E", "DOS/N"], rows)
    text += "\n\npanel 2: zoom |E| < 0.15 (paper Fig. 1 right panel)"
    emit("fig01_dos_zoom", text)
    # the low-energy window carries weight (surface/dot states in the gap
    # region of the periodic bulk)
    assert integrate_density(energies, rho) > 0
    assert np.all(rho > -1e-9)
