"""Ablation: energy to solution per solver variant.

The paper motivates heterogeneous execution with "performance and energy
efficiency" (Section I) and cites energy results for blocked GPU SpMMV
(Ref. [15]). With a TDP-based node power model, the Table III node-hour
gap translates directly into an energy gap: throughput mode burns >2x
the energy of the blocked solver for the same physics.
"""

import pytest

from _support import emit, format_table
from repro.dist.network import NetworkModel
from repro.dist.scaling_model import ClusterModel
from repro.perf.energy import EnergyModel, variant_energy_table


def test_variant_energy(benchmark):
    rows_raw = benchmark(variant_energy_table)
    rows = [
        [r["variant"], r["nodes"], r["node_hours"], r["energy_kwh"]]
        for r in rows_raw
    ]
    text = format_table(
        ["version", "nodes", "node-hours", "energy (kWh)"], rows
    )
    by = {r[0]: r for r in rows}
    ratio = by["aug_spmv"][3] / by["aug_spmmv"][3]
    text += (
        f"\n\nthroughput / blocked energy: {ratio:.2f}x — the Table III"
        "\nresource gap is an energy gap too (same node power, >2x the"
        "\nnode-hours)."
    )
    emit("ablation_energy", text)
    assert ratio > 1.9
    assert by["aug_spmmv*"][3] > by["aug_spmmv"][3]


def test_overlap_and_pipeline_save_energy(benchmark):
    """The two outlook optimizations shorten the solve, hence the bill."""
    base = ClusterModel(r=32)
    best = ClusterModel(
        r=32, network=NetworkModel(pcie_overlap=True), comm_overlap=True
    )
    em = EnergyModel()
    dom, nodes, m = (6400, 6400, 40), 1024, 2000

    def build():
        t0 = base.solve_time(dom, nodes, m)
        t1 = best.solve_time(dom, nodes, m)
        return (
            em.energy_to_solution_kwh(t0, nodes),
            em.energy_to_solution_kwh(t1, nodes),
        )

    e_base, e_best = benchmark(build)
    emit(
        "ablation_energy_overlap",
        format_table(
            ["configuration", "energy (kWh)"],
            [
                ["baseline (paper)", e_base],
                ["pipelined PCIe + comm overlap (outlook)", e_best],
            ],
        )
        + f"\n\nsaving: {(1 - e_best / e_base):.1%}",
    )
    assert e_best < e_base
    assert 0.01 <= 1 - e_best / e_base <= 0.25
