"""Paper Fig. 7: intra-socket scaling on IVB.

Regenerates the two measured series (aug_spmv and aug_spmmv at R = 32 vs
core count) from the calibrated device model, plus the roofline
prediction line: b / B_min(1) with Omega = 1, exactly as in the paper.

Expected shape: aug_spmv saturates at the memory-bound ~22 Gflop/s after
3-4 cores; aug_spmmv(R=32) scales almost linearly to the socket edge.
"""

import pytest

from _support import emit, format_table
from repro.perf.arch import IVB
from repro.perf.balance import bmin
from repro.perf.roofline import cpu_kernel_performance, memory_bound_performance


def test_fig07(benchmark):
    def build():
        rows = []
        for cores in range(1, IVB.cores + 1):
            rows.append(
                [
                    cores,
                    cpu_kernel_performance(IVB, "aug_spmv", cores=cores),
                    cpu_kernel_performance(IVB, "aug_spmmv", r=32, cores=cores),
                ]
            )
        return rows

    rows = benchmark(build)
    roof = memory_bound_performance(IVB.bandwidth_gbs, bmin(1))
    text = format_table(
        ["cores", "aug_spmv (Gflop/s)", "aug_spmmv R=32 (Gflop/s)"], rows
    )
    text += (
        f"\n\nRoofline prediction (Eq. (10), Omega = 1): {roof:.1f} Gflop/s"
        "\nPaper Fig. 7: spmv_aug saturates just below the roofline;"
        "\nspmmv_aug(R=32) scales ~linearly to ~65-70 Gflop/s at 10 cores."
    )
    emit("fig07_socket_scaling", text)

    spmv = [r[1] for r in rows]
    spmmv = [r[2] for r in rows]
    # saturation vs near-linear scaling
    assert spmv[-1] == pytest.approx(spmv[3], rel=0.05)
    assert spmv[-1] == pytest.approx(roof, rel=0.10)
    assert spmmv[-1] > 4 * spmmv[1]
    assert 55 <= spmmv[-1] <= 75
