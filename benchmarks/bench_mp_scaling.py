"""Multiprocess-engine scaling: real workers vs the sequential simulator.

The mp engine exists to exploit real cores: the same rank loop the
:class:`SimWorld` executes sequentially runs in parallel OS processes.
This bench times the sequential sim engine once and the mp engine at
worker counts {1, 2, 4} on the same problem, then records the measured
speedups to ``results/BENCH_mp.json``.

Honesty note: the speedup ceiling is the number of *physical cores the
host actually exposes* (``cpu_count`` in the payload).  On a >= 4-core
host the 4-worker run is expected to beat the sequential simulator by
well over 1.5x (the rank loop is compute-bound and embarrassingly
parallel between halo exchanges); on a 1-core container the mp runs can
only tie or lose to the simulator — the payload records the core count
precisely so the numbers are interpretable.
"""

import json
import time

import pytest

from _support import RESULTS_DIR, emit, format_table, warn_if_single_core
from repro.core.scaling import lanczos_scale
from repro.core.stochastic import make_block_vector
from repro.dist.comm import SimWorld
from repro.dist.kpm_parallel import distributed_eta
from repro.dist.mp import MpWorld
from repro.dist.partition import RowPartition
from repro.physics import build_topological_insulator

NX, NZ = 32, 8   # N = 32,768 rows
M, R = 512, 8    # sized so compute dwarfs the ~0.1 s process startup
WORKER_COUNTS = [1, 2, 4]


@pytest.mark.slow
def test_mp_scaling_vs_sim():
    h, _ = build_topological_insulator(NX, NX, NZ)
    scale = lanczos_scale(h, seed=1)
    blk = make_block_vector(h.n_rows, R, seed=2)

    def run(world, part):
        t0 = time.perf_counter()
        eta = distributed_eta(h, part, scale, M, blk, world)
        return time.perf_counter() - t0, eta

    # warm up the kernel backend (possible first-use C compilation)
    warm = RowPartition.equal(h.n_rows, 1, align=4)
    run(SimWorld(1), warm)

    t_sim, eta_ref = run(SimWorld(1), warm)
    runs = []
    for workers in WORKER_COUNTS:
        part = RowPartition.equal(h.n_rows, workers, align=4)
        t_mp, eta = run(MpWorld(workers), part)
        assert abs(eta - eta_ref).max() < 1e-9  # same physics, always
        runs.append(
            {
                "workers": workers,
                "mp_seconds": round(t_mp, 4),
                "speedup_vs_sim": round(t_sim / t_mp, 3),
            }
        )

    cores = warn_if_single_core("mp_scaling")
    payload = {
        "bench": "mp_scaling",
        "cpu_count": cores,
        "single_core_host": cores == 1,
        "matrix": {"n_rows": h.n_rows, "nnz": h.nnz, "nx": NX, "nz": NZ},
        "n_moments": M,
        "r": R,
        "sim_seconds": round(t_sim, 4),
        "runs": runs,
        "note": (
            "speedup ceiling is cpu_count; the >1.5x @ 4 workers target "
            "assumes >= 4 physical cores"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_mp.json").write_text(json.dumps(payload, indent=2))

    emit(
        "mp_scaling",
        format_table(
            ["engine", "workers", "seconds", "speedup vs sim"],
            [["sim", 1, t_sim, 1.0]]
            + [
                ["mp", r_["workers"], r_["mp_seconds"], r_["speedup_vs_sim"]]
                for r_ in runs
            ],
        )
        + f"\n(host exposes {cores} core(s))",
    )

    # structural assertions only — the parallel speedup itself depends on
    # the host's core count, which the payload records
    assert all(r_["mp_seconds"] > 0 for r_ in runs)
    if cores >= 4:
        assert runs[-1]["speedup_vs_sim"] > 1.5
