"""Paper Table I and Eqs. (5)-(7): byte/flop accounting, regenerated.

Prints Table I (min bytes and flops per call and for the whole solver),
the code-balance cascade of Eq. (4), and the B_min(R) values of
Eqs. (5)-(7) — each verified against the instrumented kernels at runtime.
"""

import pytest

from _support import emit, format_table
from repro.core.moments import compute_eta
from repro.core.scaling import SpectralScale
from repro.core.stochastic import make_block_vector
from repro.perf.balance import (
    bmin,
    bmin_limit,
    kpm_flops,
    kpm_min_traffic,
    naive_balance,
    table1_calls,
    table1_flops,
    table1_min_bytes,
)
from repro.physics import build_topological_insulator
from repro.util.counters import PerfCounters


def test_table1(benchmark):
    h, _ = build_topological_insulator(6, 6, 4, pbc=(True, True, True))
    n, nnz = h.n_rows, h.nnz
    r, m = 4, 32

    def build_table():
        rows = []
        for f in ("spmv", "axpy", "scal", "nrm2", "dot"):
            rows.append(
                [
                    f + "()",
                    int(table1_calls(f, r, m)),
                    int(table1_min_bytes(f, n, nnz)),
                    int(table1_flops(f, n, nnz)),
                ]
            )
        rows.append(
            [
                "KPM",
                1,
                int(kpm_min_traffic(n, nnz, r, m, "naive")),
                int(kpm_flops(n, nnz, r, m)),
            ]
        )
        return rows

    rows = benchmark(build_table)
    text = format_table(
        ["Funct.", "# Calls", "Min. Bytes/Call", "Flops/Call"], rows
    )
    text += f"\n\n(N = {n}, N_nz = {nnz}, R = {r}, M = {m})"

    # runtime verification: the naive engine charges exactly the KPM row
    scale = SpectralScale.from_bounds(-8, 8)
    c = PerfCounters()
    compute_eta(h, scale, m, make_block_vector(n, r, seed=0), "naive",
                counters=c)
    per_iter_bytes = kpm_min_traffic(n, nnz, r, 2, "naive")
    iters = m // 2 - 1
    init = r * (nnz * 20 + 2 * n * 16)
    assert c.bytes_total == iters * per_iter_bytes + init
    text += "\nRuntime check: instrumented naive engine charges match. OK"
    emit("table1_balance", text)


def test_eq4_to_eq7(benchmark):
    def build():
        n, nnz, r, m = 1_000_000, 13_000_000, 32, 2000
        cascade = [
            ["naive (Fig. 3)", kpm_min_traffic(n, nnz, r, m, "naive") / 1e12,
             naive_balance()],
            ["aug_spmv (Fig. 4)", kpm_min_traffic(n, nnz, r, m, "aug_spmv") / 1e12,
             bmin(1)],
            ["aug_spmmv (Fig. 5)", kpm_min_traffic(n, nnz, r, m, "aug_spmmv") / 1e12,
             bmin(r)],
        ]
        return cascade

    cascade = benchmark(build)
    text = format_table(
        ["version", "V_KPM (TB)", "B_min (bytes/flop)"], cascade
    )
    text += (
        f"\n\nEq. (6): B_min(1)   = {bmin(1):.3f}   (paper: 2.23)"
        f"\nEq. (7): B_min(inf) = {bmin_limit():.3f}   (paper: 0.35)"
        f"\nB_min(R) sweep: "
        + ", ".join(f"R={r}: {bmin(r):.3f}" for r in (1, 2, 4, 8, 16, 32, 64))
    )
    assert bmin(1) == pytest.approx(2.23, abs=0.01)
    assert bmin_limit() == pytest.approx(0.35, abs=0.01)
    emit("eq5_7_code_balance", text)
